package placement

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"bohr/internal/engine"
	"bohr/internal/faults"
	"bohr/internal/lp"
	"bohr/internal/obs"
	"bohr/internal/parallel"
	"bohr/internal/rdd"
	"bohr/internal/similarity"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

// SchemeID identifies one of the compared systems (§8.1).
type SchemeID int

// The six schemes of the evaluation.
const (
	Iridium SchemeID = iota
	IridiumC
	BohrSim
	BohrJoint
	BohrRDD
	Bohr
)

func (s SchemeID) String() string {
	switch s {
	case Iridium:
		return "Iridium"
	case IridiumC:
		return "Iridium-C"
	case BohrSim:
		return "Bohr-Sim"
	case BohrJoint:
		return "Bohr-Joint"
	case BohrRDD:
		return "Bohr-RDD"
	case Bohr:
		return "Bohr"
	}
	return "unknown"
}

// AllSchemes lists the schemes in the paper's figure order.
func AllSchemes() []SchemeID {
	return []SchemeID{Iridium, IridiumC, BohrSim, BohrJoint, BohrRDD, Bohr}
}

// MarshalJSON encodes the scheme by display name, so reports stay readable
// and stable even if the internal iota order ever changes.
func (s SchemeID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a scheme display name.
func (s *SchemeID) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, id := range AllSchemes() {
		if id.String() == name {
			*s = id
			return nil
		}
	}
	return fmt.Errorf("placement: unknown scheme %q", name)
}

// usesCubes: every scheme except plain Iridium stores data in OLAP cubes.
func (s SchemeID) usesCubes() bool { return s != Iridium }

// usesSimilarity: the Bohr family moves similar records; Iridium moves
// random ones.
func (s SchemeID) usesSimilarity() bool { return s >= BohrSim }

// usesJointLP: Bohr-Joint and full Bohr solve §5's joint LP; the others
// run the sequential heuristic plus a separate task-placement solve.
func (s SchemeID) usesJointLP() bool { return s == BohrJoint || s == Bohr }

// usesRDD: Bohr-RDD and full Bohr cluster RDD partitions at runtime.
func (s SchemeID) usesRDD() bool { return s == BohrRDD || s == Bohr }

// incomingInflation is the conservative factor on un-combined incoming
// volume: moved records land in fresh partitions and split across
// executors, so realized combining is worse than probe-ideal.
const incomingInflation = 1.4

// transferSummaryCells is the size of the destination cell summary a
// source fetches when executing a movement — a handshake exchange, much
// larger than a planning probe but still a summary.
const transferSummaryCells = 500

// lpPivotCost converts simplex pivot counts into modeled solve seconds so
// Table 5's LP time is machine-independent and included in QCT the way the
// paper includes it.
const lpPivotCost = 3e-4

// Options configures planning.
type Options struct {
	// Lag is T, the time between recurring query arrivals (s).
	Lag float64
	// ProbeK is the total probe record budget per dataset (default 30).
	ProbeK int
	// Seed drives random record selection for similarity-agnostic moves.
	Seed int64
	// PaperObjective forwards to lp.PlacementInput: incoming moved data
	// combines at the destination's own rate (the literal Eq. (1)) instead
	// of the pairwise probe rate.
	PaperObjective bool
	// DisableCalibration skips the profiled re-solve loop of the joint
	// planner (ablation knob).
	DisableCalibration bool
	// LPMaxPivots caps simplex pivots per LP phase (0 = solver default).
	// A joint LP that stalls at the cap degrades to the no-move plan and
	// a task LP that stalls degrades to uplink-proportional reduce
	// fractions; both increment the lp.stalled counter on Obs instead of
	// failing the planning round.
	LPMaxPivots int
	// BandwidthJitter > 0 makes the planner consume *estimated* bandwidth
	// instead of ground truth, the way the prototype periodically probes
	// links (§7): the true capacities are observed several times with this
	// relative noise and EWMA-smoothed before planning.
	BandwidthJitter float64
	// Faults is an optional fault schedule. The planner consumes the
	// degraded bandwidth view it implies (sites dead at query start are
	// demoted to epsilon capacity so the LP re-solves around them), data
	// moves drain through fault-scaled links, and the engine applies the
	// schedule to map/shuffle/reduce in modeled time.
	Faults *faults.Schedule
	// Obs optionally collects planning phase spans (probes, lp, calibrate,
	// move) and metrics. Nil disables collection at no cost.
	Obs *obs.Collector
	// CubeCache optionally memoizes the per-site planning cubes across
	// planning rounds (content-hash validated). Dynamic mode attaches one
	// automatically; single-shot planning gains nothing from it.
	CubeCache *CubeCache
	// SigCache optionally memoizes minhash signatures across planning
	// rounds for the RDD assigner. Nil makes each RDD plan create its
	// own per-plan cache; dynamic mode passes a shared one so recurring
	// rounds reuse (and eviction bounds) it.
	SigCache *similarity.SignatureCache
}

// withDefaults fills zero fields.
func (o Options) withDefaults() Options {
	if o.Lag <= 0 {
		o.Lag = 30
	}
	if o.ProbeK <= 0 {
		o.ProbeK = 30
	}
	return o
}

// Plan is a scheme's complete decision.
type Plan struct {
	Scheme SchemeID
	// Moves are the data movements to execute in the lag.
	Moves []engine.MoveSpec
	// TaskFrac is r, the reduce-task fractions.
	TaskFrac []float64
	// movers maps dataset name → record-selection policy.
	movers map[string]engine.Mover
	// Assigner is the partition→executor policy (nil = round robin).
	Assigner engine.Assigner
	// UseCubes reports whether queries read OLAP cubes (map-cost scale).
	UseCubes bool
	// LPTime is the modeled optimizer time, included in QCT (§8.5).
	LPTime float64
	// CheckTime is the modeled pre-processing similarity-checking time,
	// NOT included in QCT (probing precedes query arrival).
	CheckTime float64
	// Stats are the planner inputs, retained for reporting.
	Stats []*DatasetStats
	// obs is the collector the plan was made under (from Options.Obs);
	// Execute reports the move span and WAN metrics to it. Scratch plans
	// built during profiling carry nil so replays never pollute metrics.
	obs *obs.Collector
	// faults is the schedule the plan was made under (from
	// Options.Faults); Execute drains moves through fault-scaled links
	// and JobConfigFor forwards it to the engine. Scratch plans built
	// during profiling carry nil — the planner profiles the clean
	// network, it cannot foresee faults record by record.
	faults *faults.Schedule
}

// UseRandomMovers replaces every dataset's record-selection policy with
// the similarity-agnostic random mover — the "mover only" ablation that
// isolates how much of Bohr's gain comes from choosing WHICH records move.
func (p *Plan) UseRandomMovers() {
	for name := range p.movers {
		p.movers[name] = engine.RandomMover{}
	}
}

// MoverFor returns the record-selection policy for a dataset.
func (p *Plan) MoverFor(dataset string) engine.Mover {
	if m, ok := p.movers[dataset]; ok {
		return m
	}
	return engine.RandomMover{}
}

// JobConfigFor builds the engine JobConfig to run a query under this plan.
// The LP is solved once per placement round and serves every dataset's
// recurring query (§8.5: "the LP can be used for multiple iterations"),
// so its modeled time is amortized across the datasets it planned.
func (p *Plan) JobConfigFor(q engine.Query) engine.JobConfig {
	lpShare := p.LPTime
	if len(p.Stats) > 1 {
		lpShare /= float64(len(p.Stats))
	}
	cfg := engine.JobConfig{
		Query:    q,
		TaskFrac: p.TaskFrac,
		Assigner: p.Assigner,
		ExtraQCT: lpShare,
		Faults:   p.faults,
	}
	// Cube-backed schemes scan pre-aggregated cells rather than raw rows
	// (the Iridium-C gain of §8.2).
	cfg.CubeInput = p.UseCubes
	return cfg
}

// Execute applies the plan's data movements to the cluster, dataset by
// dataset with each dataset's mover, and returns the aggregate result.
func (p *Plan) Execute(c *engine.Cluster, seed int64) (*engine.MoveResult, error) {
	rng := stats.NewRand(seed)
	agg := &engine.MoveResult{}
	byDataset := map[string][]engine.MoveSpec{}
	var order []string
	for _, sp := range p.Moves {
		if _, ok := byDataset[sp.Dataset]; !ok {
			order = append(order, sp.Dataset)
		}
		byDataset[sp.Dataset] = append(byDataset[sp.Dataset], sp)
	}
	sp := p.obs.StartSpan("move")
	for _, name := range order {
		res, err := c.ApplyMoves(byDataset[name], p.MoverFor(name), rng)
		if err != nil {
			return nil, fmt.Errorf("placement: executing %s moves: %w", name, err)
		}
		agg.Records += res.Records
		agg.Transfers = append(agg.Transfers, res.Transfers...)
	}
	// Moves occupy [0, Lag) on the fault timeline, so they drain from
	// t = 0 through whatever link faults are active then.
	if p.faults != nil {
		agg.Duration = c.Top.SimulateFaults(agg.Transfers, p.faults, 0).Makespan
	} else {
		agg.Duration = c.Top.Simulate(agg.Transfers).Makespan
	}
	sp.Add(agg.Duration)
	sp.End()
	p.obs.Count("engine.records.moved", float64(agg.Records))
	wan.RecordFlows(p.obs, c.Top, "move", agg.Transfers)
	return agg, nil
}

// PlanScheme computes a scheme's plan for the workload on the given
// cluster snapshot (pre-movement).
func PlanScheme(id SchemeID, c *engine.Cluster, w *workload.Workload, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	// A planning round is one tick of the memo caches' logical clocks:
	// entries untouched for enough rounds age out here, at a sequential
	// point, never from inside the pooled kernels below.
	opts.CubeCache.Advance()
	opts.SigCache.Advance()
	planTop, err := plannerTopology(c.Top, opts)
	if err != nil {
		return nil, err
	}
	probes := opts.Obs.StartSpan("probes")
	allStats, err := ComputeAllStatsCached(c, w, opts.ProbeK, opts.CubeCache)
	if err != nil {
		probes.End()
		return nil, err
	}
	n := len(c.Top.Sites)
	for _, st := range allStats {
		opts.Obs.Count("probe.records", float64(st.ProbeShare*(n-1)))
		opts.Obs.Count("probe.bytes", c.MB(st.ProbeShare*(n-1))*1e6)
		opts.Obs.Count("cube.cells", float64(st.CubeCells))
	}
	plan := &Plan{
		Scheme:   id,
		UseCubes: id.usesCubes(),
		movers:   map[string]engine.Mover{},
		Stats:    allStats,
		obs:      opts.Obs,
		faults:   opts.Faults,
	}
	for i, st := range allStats {
		if id.usesSimilarity() {
			proj, perr := workload.Projector(w.Datasets[i].Schema, st.DominantDims)
			if perr != nil {
				return nil, perr
			}
			// Record selection happens at transfer time, when the source
			// fetches a larger cell summary from the destination (the live
			// netio workers exchange the destination's top cells in the
			// move handshake); the tiny planning probes only bound the
			// LP's similarity estimates.
			plan.movers[st.Name] = engine.SimilarMover{Project: proj, DstTopK: transferSummaryCells}
			plan.CheckTime += st.CheckTime
		} else {
			plan.movers[st.Name] = engine.RandomMover{}
		}
	}
	probes.Add(plan.CheckTime)
	probes.End()

	lpSpan := opts.Obs.StartSpan("lp")
	defer lpSpan.End()
	in := buildLPInput(planTop, len(c.Top.Sites), allStats, opts, id)
	if id.usesJointLP() {
		// The joint LP's volume predictions are calibrated against a
		// profiled replay (the recurring-query methodology of §7: the
		// previous run reveals actual intermediate sizes): solve, apply
		// the moves to a scratch clone, replay map+combine, scale the
		// incoming-similarity estimates by the observed error, re-solve.
		var moves []engine.MoveSpec
		lpStalled := false
		calibrationRounds := 3
		if opts.DisableCalibration {
			calibrationRounds = 1
		}
		for iter := 0; iter < calibrationRounds; iter++ {
			sol, err := lp.SolvePlacement(in)
			if errors.Is(err, lp.ErrStalled) {
				// The solve hit the pivot cap, so its movement tensor is
				// untrusted; fall back to not moving anything rather than
				// executing a half-optimized plan.
				opts.Obs.Count("lp.stalled", 1)
				moves = nil
				lpStalled = true
				break
			}
			if err != nil {
				return nil, fmt.Errorf("placement: joint LP: %w", err)
			}
			plan.LPTime += float64(sol.PivotCount) * lpPivotCost
			moves = tensorToMoves(allStats, sol.Move)
			if iter == calibrationRounds-1 {
				break
			}
			fReal, err := profileVolumes(c, w, plan, moves, opts.Seed)
			if err != nil {
				return nil, err
			}
			opts.Obs.Count("placement.calibration.rounds", 1)
			lpSpan.Child("calibrate")
			if !calibrateIncoming(in, allStats, sol.Move, fReal) {
				break // predictions already match
			}
		}
		// Keep the better of the LP plan and the similarity heuristic,
		// judged on profiled realized volumes — the controller never
		// deploys a joint plan that its own previous-run profiling says
		// is worse than the simple heuristic. A stalled solve skips the
		// comparison: the fallback is the conservative no-move plan.
		if !lpStalled {
			heur := sequentialHeuristic(planTop, allStats, opts, true)
			tLP, err := plannedTime(c, planTop, w, plan, moves, opts.Seed)
			if err != nil {
				return nil, err
			}
			tHeur, err := plannedTime(c, planTop, w, plan, heur, opts.Seed)
			if err != nil {
				return nil, err
			}
			if tHeur < tLP {
				moves = heur
			}
		}
		plan.Moves = moves
	} else {
		plan.Moves = sequentialHeuristic(planTop, allStats, opts, id.usesSimilarity())
	}

	// Task placement for every scheme is solved against the *realized*
	// post-move shuffle volumes of a profiled replay — exactly what a
	// recurring query's previous run provides in the prototype (§7).
	fReal, err := profileVolumes(c, w, plan, plan.Moves, opts.Seed)
	if err != nil {
		return nil, err
	}
	frac, _, pivots, err := lp.SolveTaskPlacementVolumesCapped(fReal, planTop.Uplinks(), planTop.Downlinks(), opts.LPMaxPivots)
	if errors.Is(err, lp.ErrStalled) {
		// Degrade to the bandwidth-proportional prior the alternating
		// solver itself starts from; the plan stays executable.
		opts.Obs.Count("lp.stalled", 1)
		frac = uplinkProportional(planTop.Uplinks())
		pivots = 0
	} else if err != nil {
		return nil, fmt.Errorf("placement: task LP: %w", err)
	}
	plan.TaskFrac = frac
	plan.LPTime += float64(pivots) * lpPivotCost
	opts.Obs.Count("lp.pivots", float64(pivots))
	lpSpan.Add(plan.LPTime)

	if id.usesRDD() {
		asg := rdd.NewAssigner(stats.Split(opts.Seed, 77))
		// The assigner re-places largely identical partitions on every
		// recurring query, so signatures mostly hit after the first
		// round. A shared cache from opts (dynamic mode) persists across
		// plans; otherwise one per-plan cache. Counters land in the
		// report's metrics snapshot via opts.Obs.
		asg.Cache = opts.SigCache
		if asg.Cache == nil {
			asg.Cache = similarity.NewSignatureCache(opts.Obs)
		}
		plan.Assigner = asg
	}
	return plan, nil
}

// uplinkProportional is the bandwidth-proportional reduce-fraction prior
// (the alternating solver's own starting point), used when the task LP
// stalls at the pivot cap.
func uplinkProportional(up []float64) []float64 {
	r := make([]float64, len(up))
	var total float64
	for _, u := range up {
		total += u
	}
	if total <= 0 {
		for i := range r {
			r[i] = 1 / float64(len(r))
		}
		return r
	}
	for i, u := range up {
		r[i] = u / total
	}
	return r
}

// tensorToMoves converts an LP movement tensor into MoveSpecs.
func tensorToMoves(allStats []*DatasetStats, tensor [][][]float64) []engine.MoveSpec {
	var moves []engine.MoveSpec
	for a, st := range allStats {
		for i := range tensor[a] {
			for j := range tensor[a][i] {
				if mb := tensor[a][i][j]; mb > 1e-6 && i != j {
					moves = append(moves, engine.MoveSpec{Dataset: st.Name, Src: i, Dst: j, MB: mb})
				}
			}
		}
	}
	return moves
}

// profileVolumes applies the plan's moves to a scratch clone and replays
// each dataset's dominant map+combine stage, returning the realized
// post-combiner volume f[a][i] in MB.
func profileVolumes(c *engine.Cluster, w *workload.Workload, plan *Plan, moves []engine.MoveSpec, seed int64) ([][]float64, error) {
	clone := c.Clone()
	scratch := &Plan{Scheme: plan.Scheme, Moves: moves, movers: plan.movers}
	if _, err := scratch.Execute(clone, stats.Split(seed, 501)); err != nil {
		return nil, err
	}
	// Per-site replays only read the scratch clone; fan each dataset's
	// sites out over the worker pool (results merged in site order).
	f := make([][]float64, len(w.Datasets))
	for a, ds := range w.Datasets {
		q := ds.DominantQuery().Query
		row, err := parallel.MapOrdered(0, clone.N(), func(i int) (float64, error) {
			out, perr := clone.ProfileIntermediate(clone.Data[i].Records(ds.Name), q, i)
			if perr != nil {
				return 0, fmt.Errorf("placement: profiling %q site %d: %w", ds.Name, i, perr)
			}
			return clone.MB(out), nil
		})
		if err != nil {
			return nil, err
		}
		f[a] = row
	}
	return f, nil
}

// plannedTime profiles a movement plan and returns the optimal-r shuffle
// time on the realized volumes — the planner's figure of merit.
func plannedTime(c *engine.Cluster, planTop *wan.Topology, w *workload.Workload, plan *Plan, moves []engine.MoveSpec, seed int64) (float64, error) {
	f, err := profileVolumes(c, w, plan, moves, seed)
	if err != nil {
		return 0, err
	}
	_, t, _, err := lp.SolveTaskPlacementVolumes(f, planTop.Uplinks(), planTop.Downlinks())
	return t, err
}

// calibrateIncoming compares the LP's predicted volumes against profiled
// reality and scales the un-combined incoming fraction per destination to
// close the gap. It reports whether any estimate changed materially.
func calibrateIncoming(in *lp.PlacementInput, allStats []*DatasetStats, tensor [][][]float64, fReal [][]float64) bool {
	fPred := in.ShuffleVolumes(tensor)
	changed := false
	for a := range allStats {
		for i := 0; i < in.Sites; i++ {
			var inMB, outMB float64
			for k := 0; k < in.Sites; k++ {
				if k != i {
					inMB += tensor[a][k][i]
					outMB += tensor[a][i][k]
				}
			}
			if inMB <= 1e-6 {
				continue // site received nothing; nothing to calibrate
			}
			kept := in.Input[a][i] - outMB
			if kept < 0 {
				kept = 0
			}
			keptVol := kept * in.Reduction[a] * (1 - in.SelfSim[a][i])
			predIncoming := fPred[a][i] - keptVol
			realIncoming := fReal[a][i] - keptVol
			if predIncoming <= 1e-6 || realIncoming < 0 {
				continue
			}
			corr := realIncoming / predIncoming
			if corr > 3 {
				corr = 3
			} else if corr < 0.3 {
				corr = 0.3
			}
			if corr > 0.9 && corr < 1.1 {
				continue // close enough
			}
			changed = true
			for k := 0; k < in.Sites; k++ {
				if k == i {
					continue
				}
				un := (1 - in.CrossSim[a][k][i]) * corr
				if un > 1 {
					un = 1
				} else if un < 0 {
					un = 0
				}
				in.CrossSim[a][k][i] = 1 - un
			}
		}
	}
	return changed
}

// plannerTopology returns what the planner believes the WAN looks like:
// the truth, an EWMA-smoothed noisy estimate of it when jitter is on
// (the §7 periodic bandwidth probing), and — when a fault schedule is
// set — the degraded view the schedule implies at the start of the
// query window (t = Lag): probing rounds skip dead sites, degraded
// links sample at their scaled capacity, and sites that look dead at
// planning time are demoted to epsilon capacity so the LP re-solves
// around them.
func plannerTopology(truth *wan.Topology, opts Options) (*wan.Topology, error) {
	top := truth
	if opts.BandwidthJitter > 0 {
		est, err := wan.NewBandwidthEstimator(truth.N(), 0.3)
		if err != nil {
			return nil, err
		}
		rng := stats.NewRand(stats.Split(opts.Seed, 4242))
		for i := 0; i < 6; i++ {
			est.NoisyProbe(truth, opts.BandwidthJitter, rng)
		}
		top = est.Snapshot(truth)
	}
	if !opts.Faults.Empty() {
		top = faults.PlannerView(top, opts.Faults, opts.Lag, 6)
	}
	return top, nil
}

// buildLPInput assembles the §5 placement input. Similarity-agnostic
// schemes do not track S, so their input carries all-zero similarity and
// they plan with shuffle volume I·R, exactly as Iridium models it.
func buildLPInput(planTop *wan.Topology, n int, allStats []*DatasetStats, opts Options, id SchemeID) *lp.PlacementInput {
	in := &lp.PlacementInput{
		Sites:             n,
		Datasets:          len(allStats),
		Up:                planTop.Uplinks(),
		Down:              planTop.Downlinks(),
		Lag:               opts.Lag,
		IncomingInflation: incomingInflation,
		PaperObjective:    opts.PaperObjective,
		MaxPivots:         opts.LPMaxPivots,
		Obs:               opts.Obs,
	}
	for _, st := range allStats {
		in.Input = append(in.Input, st.InputMB)
		in.Reduction = append(in.Reduction, st.Reduction)
		if id.usesSimilarity() {
			in.SelfSim = append(in.SelfSim, st.SelfSim)
			in.CrossSim = append(in.CrossSim, st.CrossSim)
		} else {
			in.SelfSim = append(in.SelfSim, make([]float64, n))
			zero := make([][]float64, n)
			for i := range zero {
				zero[i] = make([]float64, n)
			}
			in.CrossSim = append(in.CrossSim, zero)
		}
	}
	return in
}

// movesToTensor converts MoveSpecs to the x[a][i][j] tensor the LP
// evaluates shuffle volumes with.
func movesToTensor(n int, allStats []*DatasetStats, moves []engine.MoveSpec) [][][]float64 {
	idx := map[string]int{}
	for a, st := range allStats {
		idx[st.Name] = a
	}
	t := make([][][]float64, len(allStats))
	for a := range t {
		t[a] = make([][]float64, n)
		for i := range t[a] {
			t[a][i] = make([]float64, n)
		}
	}
	for _, sp := range moves {
		if a, ok := idx[sp.Dataset]; ok && sp.Src != sp.Dst {
			t[a][sp.Src][sp.Dst] += sp.MB
		}
	}
	return t
}

// sequentialHeuristic reproduces the prior-work placement loop ([27], as
// §4.3 describes it): score datasets by value (query count × bottleneck
// drain time), then for each dataset in descending value move data out of
// its bottleneck site toward receivers until the bottleneck's upload time
// matches the rest, within the lag's bandwidth budget. Similarity-aware
// mode (Bohr-Sim/Bohr-RDD) uses probe scores both to pick receivers and to
// account how much moved data will combine away at the destination.
func sequentialHeuristic(top *wan.Topology, allStats []*DatasetStats, opts Options, similarityAware bool) []engine.MoveSpec {
	n := top.N()
	up := top.Uplinks()
	down := top.Downlinks()
	budgetUp := make([]float64, n)
	budgetDown := make([]float64, n)
	for i := 0; i < n; i++ {
		budgetUp[i] = opts.Lag * up[i]
		budgetDown[i] = opts.Lag * down[i]
	}

	// Dataset value: queries × bottleneck drain time.
	type scored struct {
		a     int
		value float64
	}
	order := make([]scored, len(allStats))
	for a, st := range allStats {
		var worst float64
		for i := 0; i < n; i++ {
			if d := st.InputMB[i] * st.Reduction / up[i]; d > worst {
				worst = d
			}
		}
		order[a] = scored{a: a, value: float64(st.Queries) * worst}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].value > order[j].value })

	var specs []engine.MoveSpec
	for _, sc := range order {
		st := allStats[sc.a]
		// Current shuffle-volume estimate per site.
		f := make([]float64, n)
		remaining := append([]float64(nil), st.InputMB...)
		for i := 0; i < n; i++ {
			f[i] = remaining[i] * st.Reduction // [27]'s similarity-agnostic volume model
		}
		// Move out of the bottleneck until drain times balance or the lag
		// budget runs out. Each hop equalizes the bottleneck's upload time
		// with the chosen receiver's.
		for hop := 0; hop < 4*n; hop++ {
			b, t1, _ := bottleneck(f, up)
			if b < 0 || t1 <= 0 {
				break
			}
			j := pickReceiver(st, b, t1, f, up, budgetDown, similarityAware)
			if j < 0 {
				break
			}
			// Per moved MB the bottleneck sheds p MB of shuffle volume
			// and the receiver gains q. The [27] heuristic both Iridium
			// and Bohr-Sim run is similarity-agnostic in its VOLUME
			// decisions (p = q = R); Bohr-Sim's similarity enters only
			// through the receiver choice above and through the record
			// selection the mover performs when the plan executes.
			p := st.Reduction
			q := st.Reduction
			if p <= 0 {
				break
			}
			// Equalize (f_b − p·x)/U_b with (f_j + q·x)/U_j.
			x := (f[b]*up[j] - f[j]*up[b]) / (p*up[j] + q*up[b])
			x = minF(x, remaining[b], budgetUp[b], budgetDown[j])
			if x <= 1e-6 {
				break
			}
			specs = append(specs, engine.MoveSpec{Dataset: st.Name, Src: b, Dst: j, MB: x})
			remaining[b] -= x
			budgetUp[b] -= x
			budgetDown[j] -= x
			f[b] -= x * p
			f[j] += x * q
			if nb, nt1, _ := bottleneck(f, up); nb >= 0 && nt1 > 0.999*t1 {
				break // no further meaningful progress
			}
		}
	}
	return specs
}

// bottleneck returns the site with the largest upload drain time plus the
// top-two times.
func bottleneck(f, up []float64) (site int, t1, t2 float64) {
	site = -1
	for i := range f {
		t := f[i] / up[i]
		if t > t1 {
			site, t2, t1 = i, t1, t
		} else if t > t2 {
			t2 = t
		}
	}
	return site, t1, t2
}

// pickReceiver chooses where the bottleneck's data goes among sites whose
// own drain time leaves headroom under the current bottleneck: the
// similarity-aware mode prefers the site whose data is most similar
// (largest probe score, weighted by drain headroom), the agnostic mode the
// site with the most drain headroom; both skip budget-exhausted receivers.
func pickReceiver(st *DatasetStats, b int, t1 float64, f, up, budgetDown []float64, aware bool) int {
	best := -1
	var bestScore float64
	for j := range f {
		if j == b || budgetDown[j] <= 1e-6 || up[j] <= up[b] {
			continue // never move toward a slower uplink
		}
		headroom := t1 - f[j]/up[j]
		if headroom <= 1e-9 {
			continue // already as loaded as the bottleneck
		}
		var score float64
		if aware {
			// Balance still rules: among sites with drain headroom,
			// prefer the one whose data is most similar to the
			// bottleneck's (the moved records combine away there).
			score = headroom * (0.5 + st.CrossSim[b][j])
		} else {
			score = headroom
		}
		if best < 0 || score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

func minF(vals ...float64) float64 {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
