package placement

import (
	"math"
	"testing"

	"bohr/internal/obs"
	"bohr/internal/workload"
)

// TestPlanSchemeStalledLPFallsBack pins the planner's degraded mode: with
// a pivot cap of 1 every LP stalls, and instead of failing the round the
// joint planner must fall back to the no-move plan, the task LP to
// uplink-proportional fractions, and both must count lp.stalled. Before
// the Stalled status existed a capped solve reported itself converged and
// the planner shipped moves from an unproven basis.
func TestPlanSchemeStalledLPFallsBack(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	col := obs.NewCollector()
	plan, err := PlanScheme(BohrJoint, c, w, Options{Seed: 1, LPMaxPivots: 1, Obs: col})
	if err != nil {
		t.Fatalf("stalled LP must degrade, not fail: %v", err)
	}
	if len(plan.Moves) != 0 {
		t.Errorf("stalled joint LP produced %d moves, want none", len(plan.Moves))
	}
	if len(plan.TaskFrac) == 0 {
		t.Fatal("plan has no task fractions")
	}
	var sum float64
	for i, r := range plan.TaskFrac {
		if r < 0 {
			t.Errorf("task fraction %d = %v, want >= 0", i, r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("task fractions sum to %v, want 1", sum)
	}
	snap := col.MetricsSnapshot()
	if snap.Counters["lp.stalled"] < 2 {
		t.Errorf("lp.stalled = %v, want >= 2 (joint LP and task LP)", snap.Counters["lp.stalled"])
	}

	// An uncapped plan of the same round must not count any stalls.
	col2 := obs.NewCollector()
	if _, err := PlanScheme(BohrJoint, c, w, Options{Seed: 1, Obs: col2}); err != nil {
		t.Fatal(err)
	}
	if n := col2.MetricsSnapshot().Counters["lp.stalled"]; n != 0 {
		t.Errorf("uncapped plan counted lp.stalled = %v, want 0", n)
	}
}
