// Package placement implements the six schemes the paper compares (§8.1):
// Iridium, Iridium-C, Bohr-Sim, Bohr-Joint, Bohr-RDD and full Bohr. Each
// scheme turns a cluster snapshot plus workload knowledge into a Plan —
// data movement specs, reduce-task fractions, the record-selection policy
// (random vs similarity-aware), the executor assigner, and the modeled
// overheads the paper includes in or excludes from QCT.
package placement

import (
	"fmt"
	"strconv"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/parallel"
	"bohr/internal/similarity"
	"bohr/internal/workload"
)

// Modeled similarity-checking costs (§8.5, Tables 2 and 3): scoring one
// probe record against a site's dimension cube, and sorting/clustering a
// cube cell during pre-processing. Calibrated so that defaults land in the
// ranges the paper reports.
const (
	probeScoreCost = 1.1e-3 // seconds per probe record × remote site × dim
	cellSortCost   = 1.0e-6 // seconds per cube cell × dim during preparation
)

// DatasetStats is the per-dataset planner input distilled from probes and
// profiling: everything §5's LP consumes.
type DatasetStats struct {
	Name string
	// InputMB[i] is I_i in MB.
	InputMB []float64
	// Reduction is R: intermediate records per input record, profiled from
	// the dominant recurring query.
	Reduction float64
	// SelfSim[i] is S_i on the dominant query type's dimension cube.
	SelfSim []float64
	// CrossSim[i][j] is the probe score S_{i,j}.
	CrossSim [][]float64
	// Queries is the dataset's total recurring query count (its planning
	// weight in the sequential heuristic).
	Queries int
	// DominantDims is the attribute set movement optimizes for.
	DominantDims []string
	// CheckTime is the modeled pre-processing similarity-checking time
	// (probing happens before the query arrives, so it is NOT in QCT).
	CheckTime float64
	// NumDims is the dataset's schema width (Table 2 reports it).
	NumDims int
	// CubeCells is the total dimension-cube cell count across sites that
	// similarity checking touched (the cost basis of CheckTime).
	CubeCells int
	// ProbeShare is the dominant query type's share of the probe budget:
	// the number of destination cells a source knows when selecting
	// records to move.
	ProbeShare int
}

// ComputeStats builds planner statistics for one dataset from the cluster
// snapshot: per-site dimension cubes for the dominant query type, probe
// exchange (top-k cells weighted across query types), and map-expansion
// profiling of the dominant query.
func ComputeStats(c *engine.Cluster, ds *workload.Dataset, probeK int) (*DatasetStats, error) {
	return ComputeStatsCached(c, ds, probeK, nil)
}

// ComputeStatsCached is ComputeStats with an optional cube cache: each
// site's dominant-dimension cube is reused when the site's record
// content hash is unchanged since it was last built — the recurring
// replanning fast path. Per-site cube builds and the per-site profiling
// replays fan out over the worker pool; every per-site result is
// independent and merged in site order, so the statistics are identical
// at every pool width and cache state.
func ComputeStatsCached(c *engine.Cluster, ds *workload.Dataset, probeK int, cache *CubeCache) (*DatasetStats, error) {
	if probeK <= 0 {
		return nil, fmt.Errorf("placement: probe budget must be positive, got %d", probeK)
	}
	n := c.N()
	dom := ds.DominantQuery()
	proj, err := workload.Projector(ds.Schema, dom.Dims)
	if err != nil {
		return nil, err
	}
	// The dominant query type's share of the probe budget (§4.2).
	domShare := probeK
	if total := ds.TotalQueries(); total > 0 {
		domShare = int(float64(probeK)*float64(dom.Count)/float64(total) + 0.5)
	}
	if domShare < 1 {
		domShare = 1
	}

	// Per-site dimension cubes over the stored records, projected to the
	// dominant query type's attributes. Sites build independently on the
	// worker pool; an attached cube cache serves sites whose record
	// content is unchanged since the last planning round.
	schema, err := ds.Schema.Project(dom.Dims...)
	if err != nil {
		return nil, err
	}
	qt := olap.QueryTypeFor(dom.Dims)
	cubes, err := parallel.MapOrdered(0, n, func(i int) (*olap.Cube, error) {
		recs := c.Data[i].Records(ds.Name)
		key := ds.Name + "\x1f" + strconv.Itoa(i) + "\x1f" + string(qt)
		hash := hashRecords(recs)
		return cache.GetOrBuild(key, hash, func() (*olap.Cube, error) {
			rows := make([]olap.Row, len(recs))
			for r, rec := range recs {
				rows[r] = olap.Row{Coords: workload.SplitKey(proj(rec.Key)), Measure: rec.Val}
			}
			cube, berr := olap.BuildCube(schema, rows, 0)
			if berr != nil {
				return nil, fmt.Errorf("placement: dataset %q site %d: %w", ds.Name, i, berr)
			}
			return cube, nil
		})
	})
	if err != nil {
		return nil, err
	}
	var totalCells int
	for _, cube := range cubes {
		totalCells += cube.NumCells()
	}

	cross, err := similarity.CrossSiteMatrix(ds.Name, qt, cubes, domShare)
	if err != nil {
		return nil, err
	}
	st := &DatasetStats{
		Name:         ds.Name,
		InputMB:      c.InputMB(ds.Name),
		SelfSim:      make([]float64, n),
		CrossSim:     cross,
		Queries:      ds.TotalQueries(),
		DominantDims: dom.Dims,
		NumDims:      ds.Schema.NumDims(),
		CubeCells:    totalCells,
		ProbeShare:   domShare,
	}
	st.Reduction = profileReduction(c, ds.Name, dom.Query)

	// Probe scores measure *ideal* key overlap; the realized combiner
	// reduction is lower because records split across executors and only
	// co-located duplicates merge. The prototype estimates realized
	// reduction from the previous run of the recurring query (§7); we
	// replay one map+combine per site and scale the probe similarities to
	// realized combiner efficiency.
	// Profiling replays are read-only over the cluster and independent
	// per site, so they run on the pool; the κ scaling below stays
	// sequential (it rewrites matrix columns in site order).
	realizedBySite, err := parallel.MapOrdered(0, n, func(i int) (float64, error) {
		recs := c.Data[i].Records(ds.Name)
		realized := cross[i][i]
		if len(recs) > 0 && st.Reduction > 0 {
			out, perr := c.ProfileIntermediate(recs, dom.Query, i)
			if perr != nil {
				return 0, perr
			}
			realized = 1 - float64(out)/(float64(len(recs))*st.Reduction)
			if realized < 0 {
				realized = 0
			}
			if realized > 1 {
				realized = 1
			}
		}
		return realized, nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		ideal := cross[i][i]
		realized := realizedBySite[i]
		st.SelfSim[i] = realized
		kappa := 1.0
		if ideal > 1e-9 {
			kappa = realized / ideal
			if kappa > 1 {
				kappa = 1
			}
		}
		for k := 0; k < n; k++ {
			if k != i {
				cross[k][i] *= kappa // data arriving at i combines at realized efficiency
			}
		}
		cross[i][i] = realized
	}
	dims := float64(st.NumDims)
	st.CheckTime = float64(totalCells)*dims*cellSortCost +
		float64(domShare*(n-1))*dims*probeScoreCost
	return st, nil
}

// profileReduction estimates R, the map-stage expansion ratio, by applying
// the query's map function to a sample of the stored records — the paper
// profiles R from the previous run of the recurring query (§7).
func profileReduction(c *engine.Cluster, dataset string, q engine.Query) float64 {
	const sample = 256
	in, out := 0, 0
	for i := 0; i < c.N() && in < sample; i++ {
		for _, rec := range c.Data[i].Records(dataset) {
			if in >= sample {
				break
			}
			in++
			if q.Map == nil {
				out++
				continue
			}
			out += len(q.Map(rec))
		}
	}
	if in == 0 {
		return 1
	}
	return float64(out) / float64(in)
}

// ComputeAllStats computes DatasetStats for every dataset of a workload.
func ComputeAllStats(c *engine.Cluster, w *workload.Workload, probeK int) ([]*DatasetStats, error) {
	return ComputeAllStatsCached(c, w, probeK, nil)
}

// ComputeAllStatsCached fans the per-dataset statistics computation out
// over the worker pool — datasets only read the shared cluster snapshot,
// so they are independent — and forwards the optional cube cache to each.
func ComputeAllStatsCached(c *engine.Cluster, w *workload.Workload, probeK int, cache *CubeCache) ([]*DatasetStats, error) {
	return parallel.MapOrdered(0, len(w.Datasets), func(i int) (*DatasetStats, error) {
		return ComputeStatsCached(c, w.Datasets[i], probeK, cache)
	})
}
