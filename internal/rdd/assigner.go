package rdd

import (
	"fmt"

	"bohr/internal/engine"
	"bohr/internal/similarity"
)

// Assigner is Bohr's similarity-aware replacement for random partition→
// executor placement (§6): it estimates pairwise partition similarity with
// the sampled-minhash DIMSUM adaptation, clusters the similarity matrix
// with k-means into one cluster per executor, and co-locates each cluster.
// The modeled checking time is returned as assignment overhead, which the
// engine adds to QCT — matching the paper's measurement methodology.
type Assigner struct {
	Config DimsumConfig
	// KMeansIters bounds Lloyd iterations (default 20).
	KMeansIters int
	// Cache, when set, memoizes partition minhash signatures by content
	// hash across Assign calls — recurring rounds re-place largely
	// unchanged partitions, so their signatures need not be rebuilt. The
	// cache is synchronized; one Assigner may serve concurrent sites.
	Cache *similarity.SignatureCache
}

// NewAssigner creates an assigner with the default DIMSUM configuration.
func NewAssigner(seed int64) *Assigner {
	cfg := DefaultDimsum()
	cfg.Seed = seed
	return &Assigner{Config: cfg}
}

// Assign implements engine.Assigner.
func (a *Assigner) Assign(parts []engine.Partition, executors int) ([]int, float64, error) {
	if executors <= 0 {
		return nil, 0, fmt.Errorf("rdd: assigner needs positive executors, got %d", executors)
	}
	if len(parts) == 0 {
		return nil, 0, nil
	}
	if executors == 1 {
		return make([]int, len(parts)), 0, nil
	}
	mat, err := PairwiseSimilarityCached(parts, a.Config, a.Cache)
	if err != nil {
		return nil, 0, err
	}
	// Each partition's feature vector is its row of the similarity matrix:
	// partitions similar to the same neighbours cluster together.
	assign, err := KMeans(mat.Sim, executors, a.KMeansIters, a.Config.Seed)
	if err != nil {
		return nil, 0, err
	}
	balance(assign, parts, executors)
	return assign, mat.Overhead, nil
}

// balance caps executor load: k-means can pile most partitions onto one
// executor, which would serialize the map stage. Partitions are spilled
// from overloaded executors (smallest partitions first, which break up a
// similarity cluster the least) onto the least-loaded ones.
func balance(assign []int, parts []engine.Partition, executors int) {
	load := make([]int, executors)      // record counts
	members := make([][]int, executors) // partition indices per executor
	total := 0
	for i, e := range assign {
		load[e] += len(parts[i].Records)
		members[e] = append(members[e], i)
		total += len(parts[i].Records)
	}
	// Allow up to 2× the mean load per executor before spilling.
	cap := 2 * total / executors
	if cap == 0 {
		cap = 1
	}
	for e := 0; e < executors; e++ {
		for load[e] > cap && len(members[e]) > 1 {
			// Spill the smallest member to the least-loaded executor.
			smallest := 0
			for mi, pi := range members[e] {
				if len(parts[pi].Records) < len(parts[members[e][smallest]].Records) {
					smallest = mi
				}
			}
			pi := members[e][smallest]
			members[e] = append(members[e][:smallest], members[e][smallest+1:]...)
			least := 0
			for o := 1; o < executors; o++ {
				if load[o] < load[least] {
					least = o
				}
			}
			if least == e {
				break
			}
			assign[pi] = least
			load[e] -= len(parts[pi].Records)
			load[least] += len(parts[pi].Records)
			members[least] = append(members[least], pi)
		}
	}
}
