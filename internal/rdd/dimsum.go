// Package rdd implements Bohr's runtime RDD similarity machinery (§6):
// pairwise partition similarity via a DIMSUM-style sampled minhash
// comparison adapted to Jaccard similarity, k-means clustering of the
// similarity matrix, and an engine.Assigner that co-locates similar
// partitions on the same executor to reduce inter-executor communication.
package rdd

import (
	"fmt"

	"bohr/internal/engine"
	"bohr/internal/parallel"
	"bohr/internal/similarity"
	"bohr/internal/stats"
)

// Modeled per-operation costs used to account the similarity-checking
// overhead that the paper includes in QCT (Table 4): signature hashing per
// record-function pair and signature-entry comparison per pair-function.
const (
	hashOpCost = 1e-8 // seconds per record × hash function (signatures build once)
	cmpOpCost  = 2e-5 // seconds per compared signature entry (pairwise stage)
)

// DimsumConfig controls the pairwise similarity computation.
type DimsumConfig struct {
	// HashFunctions is m, the number of minhash functions per partition.
	HashFunctions int
	// Gamma in (0, 1] is the DIMSUM oversampling trade-off: the fraction
	// of hash functions actually compared per pair. Lower gamma is faster
	// and noisier; pairs that show no matches in the sampled prefix are
	// ruled out early (the algorithm's probabilistic skipping).
	Gamma float64
	// Seed drives sampling deterministically.
	Seed int64
}

// DefaultDimsum mirrors the prototype's settings.
func DefaultDimsum() DimsumConfig {
	return DimsumConfig{HashFunctions: 64, Gamma: 0.5, Seed: 1}
}

func (c DimsumConfig) validate() error {
	if c.HashFunctions <= 0 {
		return fmt.Errorf("rdd: dimsum needs at least one hash function, got %d", c.HashFunctions)
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("rdd: dimsum gamma must be in (0,1], got %v", c.Gamma)
	}
	return nil
}

// SimilarityMatrix holds pairwise Jaccard estimates between partitions on
// one machine plus the modeled cost of computing them.
type SimilarityMatrix struct {
	Sim [][]float64
	// Comparisons counts signature entries compared (post-skipping).
	Comparisons int
	// Overhead is the modeled seconds the computation took; the paper
	// includes it in QCT.
	Overhead float64
}

// PairwiseSimilarity estimates the Jaccard similarity between every pair
// of partitions. Signatures are built once per partition (m hash
// functions); per pair only a γ-sample of the signature entries is
// compared, and a pair whose sampled prefix shows no matches at all is
// skipped after the prefix — DIMSUM's probabilistic pruning mapped onto
// minhash signatures.
func PairwiseSimilarity(parts []engine.Partition, cfg DimsumConfig) (*SimilarityMatrix, error) {
	return PairwiseSimilarityCached(parts, cfg, nil)
}

// pairRow is one partition's half-row of pairwise estimates: vals[l] is
// the estimate for the pair (i, i+1+l) and compared counts the signature
// entries that survived probabilistic skipping.
type pairRow struct {
	vals     []float64
	compared int
}

// PairwiseSimilarityCached is PairwiseSimilarity with an optional
// signature cache: partition signatures are served from the cache by
// content hash (recurring rounds mostly hit) and the remainder computed
// as a pooled batch; pair rows then fan out over the worker pool. Every
// worker computes an independent half-row merged in index order, so both
// the matrix and the Comparisons counter are identical at any pool width
// and any cache state.
func PairwiseSimilarityCached(parts []engine.Partition, cfg DimsumConfig, cache *similarity.SignatureCache) (*SimilarityMatrix, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(parts)
	m := cfg.HashFunctions
	hasher, err := similarity.NewMinHasher(m, cfg.Seed)
	if err != nil {
		return nil, err
	}
	keysets := make([][]string, n)
	totalRecords := 0
	for i, p := range parts {
		keys := make([]string, len(p.Records))
		for r, rec := range p.Records {
			keys[r] = rec.Key
		}
		keysets[i] = keys
		totalRecords += len(p.Records)
	}
	sigs := cache.SignatureBatch(hasher, keysets, 0)

	sample := int(float64(m)*cfg.Gamma + 0.5)
	if sample < 1 {
		sample = 1
	}
	prefix := sample / 4
	if prefix < 1 {
		prefix = 1
	}
	rng := stats.NewRand(cfg.Seed)
	order := rng.Perm(m) // the sampled function subset, shared across pairs

	rows, err := parallel.MapOrdered(0, n, func(i int) (pairRow, error) {
		row := pairRow{vals: make([]float64, n-i-1)}
		for j := i + 1; j < n; j++ {
			matches, compared := 0, 0
			for s := 0; s < sample; s++ {
				f := order[s]
				compared++
				if sigs[i][f] == sigs[j][f] {
					matches++
				}
				// Probabilistic skip: a pair with zero matches after the
				// prefix is almost surely dissimilar; stop early.
				if s+1 == prefix && matches == 0 {
					break
				}
			}
			row.compared += compared
			row.vals[j-i-1] = float64(matches) / float64(compared)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}

	res := &SimilarityMatrix{Sim: make([][]float64, n)}
	for i := 0; i < n; i++ {
		res.Sim[i] = make([]float64, n)
		res.Sim[i][i] = 1
	}
	for i, row := range rows {
		res.Comparisons += row.compared
		for l, est := range row.vals {
			j := i + 1 + l
			res.Sim[i][j] = est
			res.Sim[j][i] = est
		}
	}
	res.Overhead = float64(totalRecords*m)*hashOpCost + float64(res.Comparisons)*cmpOpCost
	return res, nil
}
