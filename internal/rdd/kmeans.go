package rdd

import (
	"fmt"
	"math"

	"bohr/internal/parallel"
	"bohr/internal/stats"
)

// kmeansParallelMin is the point count below which the distance loops
// stay sequential: similarity matrices are usually tiny (one row per
// partition) and goroutine fan-out would cost more than it saves.
const kmeansParallelMin = 128

// kmeansGrain chunks the point range for the pooled distance loops; fixed
// grain, so per-chunk work is width-independent (the loops only write
// disjoint per-point slots — no float folds — but a stable shape keeps
// the kernels easy to reason about).
const kmeansGrain = 256

func kmeansWidth(n int) int {
	if n < kmeansParallelMin {
		return 1
	}
	return 0 // resolve to the process default
}

// KMeans clusters points into k clusters with Lloyd's algorithm and
// k-means++ seeding, deterministically for a given seed. It returns the
// cluster index of each point. k > len(points) is clamped; every cluster
// in [0, effectiveK) is non-empty on return.
func KMeans(points [][]float64, k, iters int, seed int64) ([]int, error) {
	n := len(points)
	if n == 0 {
		return nil, nil
	}
	if k <= 0 {
		return nil, fmt.Errorf("rdd: kmeans needs k > 0, got %d", k)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("rdd: kmeans point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k > n {
		k = n
	}
	if iters <= 0 {
		iters = 20
	}
	rng := stats.NewRand(seed)

	// k-means++ initialization.
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	chunks := parallel.Chunks(n, kmeansGrain)
	width := kmeansWidth(n)
	for len(centroids) < k {
		// Pooled distance fill: each chunk writes disjoint d2 slots; the
		// weight total is then folded sequentially in index order, the
		// same float-addition order as the sequential loop.
		_ = parallel.ForEach(width, len(chunks), func(ci int) error {
			lo, hi := chunks[ci][0], chunks[ci][1]
			for i := lo; i < hi; i++ {
				best := math.Inf(1)
				for _, c := range centroids {
					if d := sqDist(points[i], c); d < best {
						best = d
					}
				}
				d2[i] = best
			}
			return nil
		})
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(n) // all points coincide with centroids
		} else {
			r := rng.Float64() * total
			for i, d := range d2 {
				r -= d
				if r <= 0 {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[next]...))
	}

	assign := make([]int, n)
	chunkChanged := make([]bool, len(chunks))
	for it := 0; it < iters; it++ {
		// Pooled assignment: nearest centroid per point, disjoint writes;
		// the result depends only on points and centroids, not the width.
		_ = parallel.ForEach(width, len(chunks), func(ci int) error {
			lo, hi := chunks[ci][0], chunks[ci][1]
			chunkChanged[ci] = false
			for i := lo; i < hi; i++ {
				best, bestD := 0, math.Inf(1)
				for cj, c := range centroids {
					if d := sqDist(points[i], c); d < bestD {
						bestD = d
						best = cj
					}
				}
				if assign[i] != best {
					assign[i] = best
					chunkChanged[ci] = true
				}
			}
			return nil
		})
		changed := false
		for _, cc := range chunkChanged {
			changed = changed || cc
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, p := range points {
			ci := assign[i]
			counts[ci]++
			for d := range p {
				sums[ci][d] += p[d]
			}
		}
		for ci := range centroids {
			if counts[ci] == 0 {
				continue // re-seeded below
			}
			for d := range centroids[ci] {
				centroids[ci][d] = sums[ci][d] / float64(counts[ci])
			}
		}
		if !changed && it > 0 {
			break
		}
	}

	rebalanceEmpty(points, assign, k)
	return assign, nil
}

// rebalanceEmpty guarantees every cluster id in [0,k) has at least one
// point by stealing from the largest cluster — executors must all receive
// work.
func rebalanceEmpty(points [][]float64, assign []int, k int) {
	n := len(points)
	if k > n {
		k = n
	}
	for {
		counts := make([]int, k)
		for _, a := range assign {
			counts[a]++
		}
		empty := -1
		for ci := 0; ci < k; ci++ {
			if counts[ci] == 0 {
				empty = ci
				break
			}
		}
		if empty < 0 {
			return
		}
		// Steal one point from the largest cluster.
		largest := 0
		for ci := 1; ci < k; ci++ {
			if counts[ci] > counts[largest] {
				largest = ci
			}
		}
		for i := range assign {
			if assign[i] == largest {
				assign[i] = empty
				break
			}
		}
	}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
