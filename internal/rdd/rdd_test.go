package rdd

import (
	"context"
	"fmt"
	"math"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/stats"
	"bohr/internal/wan"
)

func mkPartition(idx int, keys ...string) engine.Partition {
	p := engine.Partition{Index: idx}
	for _, k := range keys {
		p.Records = append(p.Records, engine.KV{Key: k, Val: 1})
	}
	return p
}

func TestDimsumValidation(t *testing.T) {
	parts := []engine.Partition{mkPartition(0, "a")}
	if _, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 0, Gamma: 0.5}); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 8, Gamma: 0}); err == nil {
		t.Fatal("gamma=0 should error")
	}
	if _, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 8, Gamma: 1.5}); err == nil {
		t.Fatal("gamma>1 should error")
	}
}

func TestPairwiseSimilarityIdenticalAndDisjoint(t *testing.T) {
	parts := []engine.Partition{
		mkPartition(0, "a", "b", "c"),
		mkPartition(1, "a", "b", "c"),
		mkPartition(2, "x", "y", "z"),
	}
	mat, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 128, Gamma: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mat.Sim[0][0] != 1 {
		t.Fatal("diagonal must be 1")
	}
	if mat.Sim[0][1] != 1 {
		t.Fatalf("identical partitions sim = %v", mat.Sim[0][1])
	}
	if mat.Sim[0][2] > 0.1 {
		t.Fatalf("disjoint partitions sim = %v", mat.Sim[0][2])
	}
	if mat.Sim[0][1] != mat.Sim[1][0] {
		t.Fatal("matrix must be symmetric")
	}
	if mat.Overhead <= 0 || mat.Comparisons <= 0 {
		t.Fatalf("overhead accounting: %+v", mat)
	}
}

func TestGammaTradesComparisonsForAccuracy(t *testing.T) {
	rng := stats.NewRand(5)
	var parts []engine.Partition
	for p := 0; p < 12; p++ {
		keys := make([]string, 400)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Intn(600))
		}
		parts = append(parts, mkPartition(p, keys...))
	}
	full, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 128, Gamma: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := PairwiseSimilarity(parts, DimsumConfig{HashFunctions: 128, Gamma: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Comparisons >= full.Comparisons {
		t.Fatalf("gamma=0.25 should compare fewer entries: %d vs %d",
			sampled.Comparisons, full.Comparisons)
	}
	// Sampled estimates should still correlate with the full ones.
	var errSum float64
	n := 0
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			errSum += math.Abs(full.Sim[i][j] - sampled.Sim[i][j])
			n++
		}
	}
	if errSum/float64(n) > 0.2 {
		t.Fatalf("mean estimate error %v too large", errSum/float64(n))
	}
}

func TestDimsumSkipsDissimilarPairs(t *testing.T) {
	// Many mutually disjoint partitions: prefix skipping should keep
	// comparisons well below sample × pairs.
	var parts []engine.Partition
	for p := 0; p < 10; p++ {
		keys := make([]string, 50)
		for i := range keys {
			keys[i] = fmt.Sprintf("p%d-k%d", p, i)
		}
		parts = append(parts, mkPartition(p, keys...))
	}
	cfg := DimsumConfig{HashFunctions: 64, Gamma: 1, Seed: 2}
	mat, err := PairwiseSimilarity(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 10 * 9 / 2
	maxFull := pairs * 64
	if mat.Comparisons >= maxFull/2 {
		t.Fatalf("disjoint pairs should be pruned early: %d of %d comparisons",
			mat.Comparisons, maxFull)
	}
}

func TestKMeansBasic(t *testing.T) {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	assign, err := KMeans(points, 2, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("first cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("second cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("clusters merged: %v", assign)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans([][]float64{{1}}, 0, 10, 1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KMeans([][]float64{{1}, {1, 2}}, 1, 10, 1); err == nil {
		t.Fatal("ragged points should error")
	}
	if got, err := KMeans(nil, 3, 10, 1); err != nil || got != nil {
		t.Fatalf("empty input: %v %v", got, err)
	}
}

func TestKMeansMoreClustersThanPoints(t *testing.T) {
	points := [][]float64{{0}, {5}}
	assign, err := KMeans(points, 5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 2 || assign[0] == assign[1] {
		t.Fatalf("assign = %v", assign)
	}
}

func TestKMeansAllClustersNonEmpty(t *testing.T) {
	rng := stats.NewRand(8)
	points := make([][]float64, 30)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	k := 5
	assign, err := KMeans(points, k, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for _, a := range assign {
		if a < 0 || a >= k {
			t.Fatalf("assignment out of range: %d", a)
		}
		counts[a]++
	}
	for ci, c := range counts {
		if c == 0 {
			t.Fatalf("cluster %d empty: %v", ci, counts)
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	assign, err := KMeans(points, 2, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range assign {
		counts[a]++
	}
	if len(counts) != 2 {
		t.Fatalf("identical points should still fill both clusters: %v", assign)
	}
}

func TestAssignerGroupsSimilarPartitions(t *testing.T) {
	// Two similarity groups; the assigner should co-locate each group.
	var parts []engine.Partition
	for p := 0; p < 4; p++ {
		group := p / 2
		keys := make([]string, 200)
		for i := range keys {
			keys[i] = fmt.Sprintf("g%d-k%d", group, i%50)
		}
		parts = append(parts, mkPartition(p, keys...))
	}
	a := NewAssigner(3)
	assign, overhead, err := a.Assign(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if overhead <= 0 {
		t.Fatalf("overhead = %v", overhead)
	}
	if assign[0] != assign[1] {
		t.Fatalf("group 0 split: %v", assign)
	}
	if assign[2] != assign[3] {
		t.Fatalf("group 1 split: %v", assign)
	}
	if assign[0] == assign[2] {
		t.Fatalf("groups merged: %v", assign)
	}
}

func TestAssignerEdgeCases(t *testing.T) {
	a := NewAssigner(1)
	if _, _, err := a.Assign([]engine.Partition{mkPartition(0, "k")}, 0); err == nil {
		t.Fatal("zero executors should error")
	}
	got, overhead, err := a.Assign(nil, 4)
	if err != nil || got != nil || overhead != 0 {
		t.Fatalf("empty parts: %v %v %v", got, overhead, err)
	}
	// Single executor: no checking needed, zero overhead.
	got, overhead, err = a.Assign([]engine.Partition{mkPartition(0, "k"), mkPartition(1, "j")}, 1)
	if err != nil || overhead != 0 {
		t.Fatalf("single executor: %v %v", overhead, err)
	}
	for _, e := range got {
		if e != 0 {
			t.Fatalf("single executor assignment: %v", got)
		}
	}
}

func TestAssignerBalancesLoad(t *testing.T) {
	// 8 near-identical partitions would all land in one k-means cluster;
	// the balance pass must spread record load across executors.
	var parts []engine.Partition
	for p := 0; p < 8; p++ {
		keys := make([]string, 100)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", i)
		}
		parts = append(parts, mkPartition(p, keys...))
	}
	a := NewAssigner(5)
	assign, _, err := a.Assign(parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]int, 4)
	for pi, e := range assign {
		load[e] += len(parts[pi].Records)
	}
	total := 800
	for e, l := range load {
		if l > total/2 {
			t.Fatalf("executor %d overloaded with %d of %d records: %v", e, l, total, assign)
		}
	}
}

func TestAssignerIsEngineAssigner(t *testing.T) {
	var _ engine.Assigner = NewAssigner(1)
}

func TestAssignerReducesIntermediateData(t *testing.T) {
	// End-to-end §6 claim: co-locating similar partitions reduces the
	// post-combiner intermediate volume versus round-robin.
	top := engineTestTopology(t)
	build := func() *engine.Cluster {
		c, err := engine.NewCluster(top, 1, 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Striped data: consecutive runs of records share keys, so
		// contiguous partitions come in similarity groups.
		for g := 0; g < 4; g++ {
			for i := 0; i < 2000; i++ {
				c.Data[0].Add("ds", engine.KV{Key: fmt.Sprintf("g%d-k%d", g, i%100), Val: 1})
			}
		}
		return c
	}
	run := func(a engine.Assigner) float64 {
		c := build()
		res, err := c.Run(context.Background(), engine.JobConfig{
			Query:    engine.ScanQuery("s", "ds"),
			Assigner: a,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.IntermediateMBPerSite[0]
	}
	rr := run(engine.RoundRobinAssigner{})
	sim := run(NewAssigner(7))
	if sim >= rr {
		t.Fatalf("similarity assigner should reduce intermediate data: sim=%v rr=%v", sim, rr)
	}
}

func engineTestTopology(t *testing.T) *wan.Topology {
	t.Helper()
	top, err := wan.NewTopology([]string{"a", "b"}, []float64{10, 10}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	return top
}
