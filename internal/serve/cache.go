package serve

import (
	"fmt"
	"strings"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/sql"
)

// ResultCache memoizes finished query results on the bounded LRU store.
// Keys pair the statement's canonical rendering with a hash of the
// dataset contents the statement read, so textual variants of one query
// hit the same entry while any data change misses (and the stale entry
// ages out instead of being served).
type ResultCache struct {
	store *cache.Store[string, []engine.KV]
}

// NewResultCache builds a result cache with the given capacity; col may
// be nil. The store registers serve.results.{entries,bytes,evictions}
// level counters on the collector.
func NewResultCache(caps cache.Caps, col *obs.Collector) *ResultCache {
	return &ResultCache{
		store: cache.New("serve.results", caps, col, func(k string, rows []engine.KV) int64 {
			n := int64(len(k))
			for _, kv := range rows {
				n += int64(len(kv.Key)) + 8
			}
			return n
		}),
	}
}

// Key derives the cache key for a statement over data with the given
// content hash.
func (rc *ResultCache) Key(stmt *sql.Statement, contentHash uint64) string {
	return fmt.Sprintf("%s\x00%016x", Normalize(stmt), contentHash)
}

// Get returns the cached rows for the key, if present.
func (rc *ResultCache) Get(key string) ([]engine.KV, bool) {
	return rc.store.Get(key)
}

// Insert stores finished rows under the key and advances the store's
// logical clock one round, so entries untouched for a full capacity
// cycle age out LRU.
func (rc *ResultCache) Insert(key string, rows []engine.KV) {
	rc.store.Put(key, rows)
	rc.store.Advance()
}

// Len reports live entries (for tests).
func (rc *ResultCache) Len() int { return rc.store.Len() }

// Normalize renders a parsed statement canonically: uppercase keywords,
// single spacing, lowercased identifiers in parse order. Two query texts
// that parse to the same statement normalize identically, so whitespace
// and case variants share one cache entry.
func Normalize(stmt *sql.Statement) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Agg != sql.AggNone {
			fmt.Fprintf(&b, "%s(%s)", it.Agg, strings.ToLower(it.Column))
		} else {
			b.WriteString(strings.ToLower(it.Column))
		}
	}
	fmt.Fprintf(&b, " FROM %s", strings.ToLower(stmt.Dataset))
	if len(stmt.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range stmt.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %s", strings.ToLower(c.Column), c.Op, c.Value)
		}
	}
	if len(stmt.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range stmt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strings.ToLower(g))
		}
	}
	if stmt.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", stmt.OrderBy)
		if stmt.Desc {
			b.WriteString(" DESC")
		}
	}
	if stmt.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", stmt.Limit)
	}
	return b.String()
}
