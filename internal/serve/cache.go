package serve

import (
	"fmt"
	"strings"
	"sync"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/sql"
)

// ResultCache memoizes finished query results on the bounded LRU store.
// Keys pair the statement's canonical rendering with a hash of the
// dataset contents the statement read, so textual variants of one query
// hit the same entry while any data change misses (and the stale entry
// ages out instead of being served). The ingest path additionally
// invalidates eagerly: when new rows land for a dataset,
// InvalidateDataset drops its entries immediately instead of waiting for
// LRU aging, so a cached result is never one hash-collision away from
// being served stale and the memory frees at once.
type ResultCache struct {
	store *cache.Store[string, []engine.KV]

	// mu guards the dataset index: every inserted key, bucketed by the
	// dataset the statement read, so invalidation does not depend on
	// parsing datasets back out of keys.
	mu        sync.Mutex
	byDataset map[string]map[string]struct{}
}

// NewResultCache builds a result cache with the given capacity; col may
// be nil. The store registers serve.results.{entries,bytes,evictions}
// level counters on the collector.
func NewResultCache(caps cache.Caps, col *obs.Collector) *ResultCache {
	return &ResultCache{
		store: cache.New("serve.results", caps, col, func(k string, rows []engine.KV) int64 {
			n := int64(len(k))
			for _, kv := range rows {
				n += int64(len(kv.Key)) + 8
			}
			return n
		}),
		byDataset: map[string]map[string]struct{}{},
	}
}

// Key derives the cache key for a statement over data with the given
// content hash.
func (rc *ResultCache) Key(stmt *sql.Statement, contentHash uint64) string {
	return fmt.Sprintf("%s\x00%016x", Normalize(stmt), contentHash)
}

// Get returns the cached rows for the key, if present.
func (rc *ResultCache) Get(key string) ([]engine.KV, bool) {
	return rc.store.Get(key)
}

// Insert stores finished rows under the key, indexed by the dataset the
// statement read, and advances the store's logical clock one round, so
// entries untouched for a full capacity cycle age out LRU.
func (rc *ResultCache) Insert(key, dataset string, rows []engine.KV) {
	rc.store.Put(key, rows)
	rc.store.Advance()
	rc.mu.Lock()
	bucket := rc.byDataset[dataset]
	if bucket == nil {
		bucket = map[string]struct{}{}
		rc.byDataset[dataset] = bucket
	}
	bucket[key] = struct{}{}
	// The store evicts on its own; prune index entries the store no
	// longer holds once a bucket visibly outgrows the live set, so the
	// index stays proportional to the store.
	if len(bucket) >= 64 && len(bucket) > 2*rc.store.Len() {
		for k := range bucket {
			if _, live := rc.store.Peek(k); !live {
				delete(bucket, k)
			}
		}
	}
	rc.mu.Unlock()
}

// InvalidateDataset drops every cached result whose statement read the
// named dataset and returns how many entries it removed. The ingest path
// calls it when new rows land, so the next query over the dataset
// recomputes against fresh data instead of racing LRU aging.
func (rc *ResultCache) InvalidateDataset(dataset string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	bucket := rc.byDataset[dataset]
	if len(bucket) == 0 {
		return 0
	}
	dropped := 0
	for k := range bucket {
		if _, live := rc.store.Peek(k); live {
			dropped++
		}
		rc.store.Delete(k)
	}
	delete(rc.byDataset, dataset)
	return dropped
}

// Len reports live entries (for tests).
func (rc *ResultCache) Len() int { return rc.store.Len() }

// Normalize renders a parsed statement canonically: uppercase keywords,
// single spacing, lowercased identifiers in parse order. Two query texts
// that parse to the same statement normalize identically, so whitespace
// and case variants share one cache entry.
func Normalize(stmt *sql.Statement) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Agg != sql.AggNone {
			fmt.Fprintf(&b, "%s(%s)", it.Agg, strings.ToLower(it.Column))
		} else {
			b.WriteString(strings.ToLower(it.Column))
		}
	}
	fmt.Fprintf(&b, " FROM %s", strings.ToLower(stmt.Dataset))
	if len(stmt.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range stmt.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %s", strings.ToLower(c.Column), c.Op, c.Value)
		}
	}
	if len(stmt.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range stmt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strings.ToLower(g))
		}
	}
	if stmt.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", stmt.OrderBy)
		if stmt.Desc {
			b.WriteString(" DESC")
		}
	}
	if stmt.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", stmt.Limit)
	}
	return b.String()
}
