package serve

import (
	"testing"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/sql"
)

func mustParse(t *testing.T, q string) *sql.Statement {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt
}

func TestNormalizeCollapsesVariants(t *testing.T) {
	base := mustParse(t, "SELECT url, SUM(measure) FROM logs WHERE country = 'US' GROUP BY url ORDER BY value DESC LIMIT 5")
	variants := []string{
		"select url,   sum(measure) from logs where country='US' group by url order by value desc limit 5",
		"SELECT url, SUM(measure)\nFROM logs\nWHERE country = 'US'\nGROUP BY url ORDER BY value DESC LIMIT 5",
	}
	want := Normalize(base)
	for _, v := range variants {
		if got := Normalize(mustParse(t, v)); got != want {
			t.Fatalf("Normalize(%q) = %q, want %q", v, got, want)
		}
	}
}

func TestNormalizeDistinguishesStatements(t *testing.T) {
	a := Normalize(mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url"))
	for _, q := range []string{
		"SELECT url, SUM(measure) FROM logs GROUP BY url LIMIT 5",
		"SELECT url, COUNT(*) FROM logs GROUP BY url",
		"SELECT url, SUM(measure) FROM other GROUP BY url",
		"SELECT url, SUM(measure) FROM logs WHERE url = 'x' GROUP BY url",
	} {
		if b := Normalize(mustParse(t, q)); b == a {
			t.Fatalf("distinct statement %q normalized to the same key %q", q, a)
		}
	}
}

func TestResultCacheKeyIncludesContentHash(t *testing.T) {
	rc := NewResultCache(cache.Caps{Entries: 8}, nil)
	stmt := mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	rows := []engine.KV{{Key: "a", Val: 1}}
	k1 := rc.Key(stmt, 0x1111)
	k2 := rc.Key(stmt, 0x2222)
	if k1 == k2 {
		t.Fatal("keys over different content hashes collide")
	}
	rc.Insert(k1, stmt.Dataset, rows)
	if _, ok := rc.Get(k2); ok {
		t.Fatal("changed data (new content hash) still hit the old entry")
	}
	got, ok := rc.Get(k1)
	if !ok || len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("Get(k1) = %v, %v", got, ok)
	}
}

func TestResultCacheInvalidateDataset(t *testing.T) {
	rc := NewResultCache(cache.Caps{Entries: 16}, nil)
	logs := mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	other := mustParse(t, "SELECT url, SUM(measure) FROM events GROUP BY url")
	k1 := rc.Key(logs, 1)
	k2 := rc.Key(logs, 2)
	k3 := rc.Key(other, 1)
	rc.Insert(k1, logs.Dataset, []engine.KV{{Key: "a", Val: 1}})
	rc.Insert(k2, logs.Dataset, []engine.KV{{Key: "b", Val: 2}})
	rc.Insert(k3, other.Dataset, []engine.KV{{Key: "c", Val: 3}})
	if n := rc.InvalidateDataset("logs"); n != 2 {
		t.Fatalf("InvalidateDataset dropped %d entries, want 2", n)
	}
	if _, ok := rc.Get(k1); ok {
		t.Fatal("logs entry survived invalidation")
	}
	if _, ok := rc.Get(k2); ok {
		t.Fatal("second logs entry survived invalidation")
	}
	if _, ok := rc.Get(k3); !ok {
		t.Fatal("unrelated dataset's entry was dropped")
	}
	// Idempotent and safe on unknown datasets.
	if n := rc.InvalidateDataset("logs"); n != 0 {
		t.Fatalf("second invalidation dropped %d", n)
	}
	if n := rc.InvalidateDataset("never-seen"); n != 0 {
		t.Fatalf("unknown dataset dropped %d", n)
	}
}

func TestResultCacheEvictsLRU(t *testing.T) {
	rc := NewResultCache(cache.Caps{Entries: 2}, nil)
	stmt := mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	for i := uint64(0); i < 5; i++ {
		rc.Insert(rc.Key(stmt, i), stmt.Dataset, []engine.KV{{Key: "x", Val: float64(i)}})
	}
	if got := rc.Len(); got > 2 {
		t.Fatalf("cache holds %d entries, cap 2", got)
	}
}
