package serve

import (
	"testing"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/sql"
)

func mustParse(t *testing.T, q string) *sql.Statement {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt
}

func TestNormalizeCollapsesVariants(t *testing.T) {
	base := mustParse(t, "SELECT url, SUM(measure) FROM logs WHERE country = 'US' GROUP BY url ORDER BY value DESC LIMIT 5")
	variants := []string{
		"select url,   sum(measure) from logs where country='US' group by url order by value desc limit 5",
		"SELECT url, SUM(measure)\nFROM logs\nWHERE country = 'US'\nGROUP BY url ORDER BY value DESC LIMIT 5",
	}
	want := Normalize(base)
	for _, v := range variants {
		if got := Normalize(mustParse(t, v)); got != want {
			t.Fatalf("Normalize(%q) = %q, want %q", v, got, want)
		}
	}
}

func TestNormalizeDistinguishesStatements(t *testing.T) {
	a := Normalize(mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url"))
	for _, q := range []string{
		"SELECT url, SUM(measure) FROM logs GROUP BY url LIMIT 5",
		"SELECT url, COUNT(*) FROM logs GROUP BY url",
		"SELECT url, SUM(measure) FROM other GROUP BY url",
		"SELECT url, SUM(measure) FROM logs WHERE url = 'x' GROUP BY url",
	} {
		if b := Normalize(mustParse(t, q)); b == a {
			t.Fatalf("distinct statement %q normalized to the same key %q", q, a)
		}
	}
}

func TestResultCacheKeyIncludesContentHash(t *testing.T) {
	rc := NewResultCache(cache.Caps{Entries: 8}, nil)
	stmt := mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	rows := []engine.KV{{Key: "a", Val: 1}}
	k1 := rc.Key(stmt, 0x1111)
	k2 := rc.Key(stmt, 0x2222)
	if k1 == k2 {
		t.Fatal("keys over different content hashes collide")
	}
	rc.Insert(k1, rows)
	if _, ok := rc.Get(k2); ok {
		t.Fatal("changed data (new content hash) still hit the old entry")
	}
	got, ok := rc.Get(k1)
	if !ok || len(got) != 1 || got[0].Key != "a" {
		t.Fatalf("Get(k1) = %v, %v", got, ok)
	}
}

func TestResultCacheEvictsLRU(t *testing.T) {
	rc := NewResultCache(cache.Caps{Entries: 2}, nil)
	stmt := mustParse(t, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	for i := uint64(0); i < 5; i++ {
		rc.Insert(rc.Key(stmt, i), []engine.KV{{Key: "x", Val: float64(i)}})
	}
	if got := rc.Len(); got > 2 {
		t.Fatalf("cache holds %d entries, cap 2", got)
	}
}
