package serve

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"

	"bohr/internal/core"
	"bohr/internal/durable"
	"bohr/internal/engine"
	"bohr/internal/ingest"
	"bohr/internal/olap"
)

// DurableBackend is a backend whose applied state can be captured into a
// durability snapshot and restored from one at startup. EngineBackend
// implements it.
type DurableBackend interface {
	RowApplier
	// CaptureState dumps the applied serving state (cluster rows, cube
	// bases, ingest progress). The caller fills in WalSeq and Sources —
	// both live at the pipeline layer — and must hold the pipeline
	// barriered so the dump and the WAL position agree.
	CaptureState() *durable.State
	// RestoreState replaces the applied state with a snapshot dump. Call
	// on a freshly prepared backend before serving starts.
	RestoreState(st *durable.State) error
}

// CaptureState dumps every dataset's per-site rows plus — for datasets
// live-ingested into — the per-site base cubes, under the shared state
// lock (capture only reads; the pipeline barrier has already quiesced
// writers).
func (b *EngineBackend) CaptureState() *durable.State {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	st := &durable.State{IngestBatches: b.sys.IngestBatches()}
	cubes := b.sys.ExportCubeStates()
	c := b.sys.Cluster
	for _, ds := range b.sys.Workload.Datasets {
		siteCubes, hasCubes := cubes[ds.Name]
		dstate := durable.DatasetState{Name: ds.Name, HasCubes: hasCubes}
		for site := 0; site < c.N(); site++ {
			ss := durable.SiteState{Site: strconv.Itoa(site)}
			for _, kv := range c.Data[site].Records(ds.Name) {
				ss.Records = append(ss.Records, durable.KVState{Key: kv.Key, Val: kv.Val})
			}
			if hasCubes {
				for _, cell := range siteCubes[site].Cells {
					ss.CubeCells = append(ss.CubeCells, durable.CellState{
						Coords: cell.Coords, Sum: cell.Sum, Count: cell.Count,
					})
				}
				ss.CubeRows = siteCubes[site].Rows
			}
			dstate.Sites = append(dstate.Sites, ss)
		}
		st.Datasets = append(st.Datasets, dstate)
	}
	return st
}

// RestoreState loads a snapshot dump into the backend: every dataset's
// per-site rows are replaced wholesale, cube bases are swapped for
// datasets the snapshot carries cubes for (others keep their seed-
// derived state, which is what the snapshot's absence asserts), the
// ingest batch counter resumes, and content-hash memos drop.
func (b *EngineBackend) RestoreState(st *durable.State) error {
	b.stateMu.Lock()
	defer b.stateMu.Unlock()
	c := b.sys.Cluster
	cubeStates := map[string][]core.SiteCubeState{}
	for _, ds := range st.Datasets {
		if b.Schema(ds.Name) == nil {
			return fmt.Errorf("serve: restore: snapshot has unknown dataset %q", ds.Name)
		}
		if len(ds.Sites) != c.N() {
			return fmt.Errorf("serve: restore: %q snapshot has %d sites, cluster has %d",
				ds.Name, len(ds.Sites), c.N())
		}
		for i, ss := range ds.Sites {
			if ss.Site != strconv.Itoa(i) {
				return fmt.Errorf("serve: restore: %q site %d labeled %q", ds.Name, i, ss.Site)
			}
			if len(ss.Records) == 0 {
				delete(c.Data[i].Datasets, ds.Name)
				continue
			}
			kvs := make([]engine.KV, len(ss.Records))
			for j, r := range ss.Records {
				kvs[j] = engine.KV{Key: r.Key, Val: r.Val}
			}
			c.Data[i].Datasets[ds.Name] = kvs
		}
		if ds.HasCubes {
			sites := make([]core.SiteCubeState, len(ds.Sites))
			for i, ss := range ds.Sites {
				cells := make([]olap.Cell, len(ss.CubeCells))
				for j, cs := range ss.CubeCells {
					cells[j] = olap.Cell{Coords: cs.Coords, Sum: cs.Sum, Count: cs.Count}
				}
				sites[i] = core.SiteCubeState{Cells: cells, Rows: ss.CubeRows}
			}
			cubeStates[ds.Name] = sites
		}
	}
	if len(cubeStates) > 0 {
		if err := b.sys.RestoreCubeStates(cubeStates); err != nil {
			return fmt.Errorf("serve: restore: %w", err)
		}
	}
	b.sys.RestoreIngestProgress(st.IngestBatches)
	b.mu.Lock()
	b.hashes = map[string]uint64{}
	b.mu.Unlock()
	return nil
}

// EnableDurableIngest is EnableIngest plus crash safety: it recovers
// state from the manager's data directory (newest valid snapshot, then
// the WAL tail replayed exactly-once through the offset dedupe), wires
// the WAL in as the pipeline's ack-boundary journal, seeds the dedupe
// trackers with the recovered offsets, and snapshots in the background
// every snapshotEvery applied batches (0 disables cadence snapshots;
// the shutdown path still cuts a final one via SnapshotNow).
func (s *Server) EnableDurableIngest(ctx context.Context, cfg ingest.Config, m *durable.Manager, snapshotEvery int) (*ingest.Pipeline, *durable.RecoverySummary, error) {
	db, ok := s.backend.(DurableBackend)
	if !ok {
		return nil, nil, fmt.Errorf("serve: backend %T cannot capture durable state", s.backend)
	}
	sum, err := m.Recover(ctx,
		func(st *durable.State) error { return db.RestoreState(st) },
		func(ctx context.Context, recs []ingest.Record) error {
			_, err := db.ApplyBatch(ctx, ingest.Batch{Records: recs})
			return err
		})
	if err != nil {
		return nil, nil, fmt.Errorf("serve: recover: %w", err)
	}
	s.dman = m
	s.dback = db
	s.snapEvery = snapshotEvery
	cfg.Journal = m.Journal()
	cfg.RestoreOffsets = sum.Sources
	pipe, err := s.EnableIngest(cfg)
	if err != nil {
		return nil, nil, err
	}
	return pipe, sum, nil
}

// SnapshotNow cuts one snapshot at a pipeline barrier: admission pauses,
// buffers drain through the applier, and the state dump is captured
// together with the WAL position it corresponds to. The file write and
// WAL prune happen after the barrier releases — the dump is a deep copy,
// so ingest resumes while it hits disk.
func (s *Server) SnapshotNow(ctx context.Context) error {
	if s.dman == nil || s.pipe == nil {
		return fmt.Errorf("serve: durable ingest not enabled")
	}
	var st *durable.State
	err := s.pipe.Barrier(ctx, func() error {
		st = s.dback.CaptureState()
		st.WalSeq = s.dman.Seq()
		st.Sources = s.pipe.OffsetsSnapshot()
		return nil
	})
	if err != nil {
		return err
	}
	if err := s.dman.WriteSnapshot(st); err != nil {
		return err
	}
	s.count("serve.durable.snapshots", 1)
	return nil
}

// maybeSnapshot runs after every applied batch: once snapshotEvery
// batches accumulate it kicks one background snapshot, never more than
// one at a time (a slow disk skips cadence points rather than queueing).
// It must not snapshot inline — the applier holds the delivery lock the
// barrier's flush needs.
func (s *Server) maybeSnapshot() {
	if s.dman == nil || s.snapEvery <= 0 {
		return
	}
	if s.snapPending.Add(1) < int64(s.snapEvery) {
		return
	}
	if !s.snapBusy.CompareAndSwap(false, true) {
		return
	}
	s.snapPending.Store(0)
	s.snapWG.Add(1)
	go func() {
		defer s.snapWG.Done()
		defer s.snapBusy.Store(false)
		if err := s.SnapshotNow(context.Background()); err != nil {
			s.count("serve.durable.snapshot_errors", 1)
			if s.log != nil {
				s.log.Error("serve: background snapshot failed", slog.String("error", err.Error()))
			}
		}
	}()
}

// DrainSnapshots waits for any in-flight background snapshot — shutdown
// calls it between closing the pipeline and cutting the final snapshot.
func (s *Server) DrainSnapshots() { s.snapWG.Wait() }
