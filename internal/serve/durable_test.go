package serve

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"bohr/internal/core"
	"bohr/internal/durable"
	"bohr/internal/ingest"
)

// pushRange pushes offsets [from, to] of the "prop" source straight at
// the pipeline in batches of eight.
func pushRange(t *testing.T, sys *core.System, pipe *ingest.Pipeline, source string, from, to uint64) {
	t.Helper()
	ctx := context.Background()
	for lo := from; lo <= to; {
		hi := min(lo+7, to)
		recs := make([]ingest.Record, 0, hi-lo+1)
		for off := lo; off <= hi; off++ {
			recs = append(recs, liveRecord(sys, source, off, int(off)%sys.Cluster.N()))
		}
		if _, err := pipe.Push(ctx, recs...); err != nil {
			t.Fatalf("pushing offsets %d..%d: %v", lo, hi, err)
		}
		lo = hi + 1
	}
}

// TestIngestServerCrashChaos extends the ingest chaos scenario with a
// server-side crash: the pipeline's workers die mid-stream via Kill —
// no drain, no snapshot, buffered batches abandoned — and a fresh
// incarnation recovers from the durability directory alone. The client
// then replays its whole stream at-least-once. The invariants match the
// client-crash leg exactly: zero records lost, zero double-applied, and
// the watermark/dedupe accounting unchanged by the server's death.
func TestIngestServerCrashChaos(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	const total, crashAt = 60, 30
	pcfg := func() ingest.Config {
		return ingest.Config{MaxBatchRecords: 10, FlushInterval: -1, Seed: 5}
	}
	ccfg := ingest.ClientConfig{BatchRecords: 10, RetryBase: time.Millisecond, Seed: 5}

	// First incarnation over an empty directory: nothing to recover.
	sys1 := smallSystem(t)
	ds := sys1.Workload.Datasets[0]
	fe1 := New(NewEngineBackend(sys1), Config{}, nil)
	m1, err := durable.Open(durable.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	pipe1, sum1, err := fe1.EnableDurableIngest(ctx, pcfg(), m1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.FramesReplayed != 0 || sum1.SnapshotSeq != 0 {
		t.Fatalf("empty directory recovered state: %+v", sum1)
	}
	inj := &faultInjector{inner: fe1.Handler()}
	ts1 := httptest.NewServer(inj)

	cli1 := ingest.NewClient(ts1.URL+"/v1/ingest", "web-tier", ccfg)
	for off := uint64(1); off <= crashAt; off++ {
		r := liveRecord(sys1, "web-tier", off, int(off)%sys1.Cluster.N())
		if err := cli1.Add(ctx, r.Dataset, r.Site, r.Coords, r.Measure); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
	}
	if err := cli1.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// The server "dies": workers are killed with acked batches still
	// buffered ahead of the applier — the window only the WAL covers.
	pipe1.Kill()
	ts1.Close()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	inj.mu.Lock()
	drops := inj.drops
	inj.mu.Unlock()
	if drops == 0 {
		t.Fatal("fault injector never fired; the chaos leg exercised nothing")
	}

	// Second incarnation: a fresh seed system (the process restarted)
	// recovering from the WAL alone.
	sys2 := smallSystem(t)
	seed := clusterRecords(sys2, ds.Name)
	fe2 := New(NewEngineBackend(sys2), Config{}, nil)
	m2, err := durable.Open(durable.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	pipe2, sum2, err := fe2.EnableDurableIngest(ctx, pcfg(), m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	defer pipe2.Close()
	// Every acked record was journaled, so recovery applies exactly the
	// acked prefix and the watermark lands where the client left off.
	if sum2.RecordsReplayed != crashAt || sum2.RecordsDeduped != 0 {
		t.Fatalf("recovery replayed %d records (%d deduped), want %d fresh",
			sum2.RecordsReplayed, sum2.RecordsDeduped, crashAt)
	}
	if w := pipe2.Watermark("web-tier"); w != crashAt {
		t.Fatalf("recovered watermark %d, want %d", w, crashAt)
	}
	if got := clusterRecords(sys2, ds.Name); got != seed+crashAt {
		t.Fatalf("recovered cluster holds %d live records, want %d", got-seed, crashAt)
	}

	// The client restarts too and replays its whole stream from offset 1.
	ts2 := httptest.NewServer(fe2.Handler())
	defer ts2.Close()
	cli2 := ingest.NewClient(ts2.URL+"/v1/ingest", "web-tier", ccfg)
	for off := uint64(1); off <= total; off++ {
		r := liveRecord(sys2, "web-tier", off, int(off)%sys2.Cluster.N())
		if err := cli2.Add(ctx, r.Dataset, r.Site, r.Coords, r.Measure); err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
	}
	if err := cli2.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pipe2.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Watermark and dedupe accounting look exactly as if the server had
	// never died: the replayed prefix dedupes, the tail applies once.
	if w := pipe2.Watermark("web-tier"); w != total {
		t.Fatalf("final watermark %d, want %d", w, total)
	}
	st := pipe2.Stats()
	if st.Accepted != total-crashAt || st.Deduped != crashAt {
		t.Fatalf("post-restart stats accepted %d deduped %d, want %d/%d",
			st.Accepted, st.Deduped, total-crashAt, crashAt)
	}
	if got := clusterRecords(sys2, ds.Name); got != seed+total {
		t.Fatalf("cluster gained %d live records, want %d (zero loss, zero double-apply)",
			got-seed, total)
	}
	dim := ds.Schema.Dims()[0]
	_, out := postQuery(t, ts2.URL, "alice",
		"SELECT "+dim+", SUM(measure) FROM "+ds.Name+" GROUP BY "+dim)
	sum := 0.0
	for _, row := range out.Rows {
		if strings.Contains(row.Key, "liveA") {
			sum += row.Val
		}
	}
	if sum != total {
		t.Fatalf("liveA group sums to %v, want %d (each record counted once)", sum, total)
	}
}

// flatRecords is each dataset's record multiset across all sites,
// sorted. Raw per-site placement is legitimately history-dependent —
// IngestBatch forwards each batch's arrivals along the movement shares,
// so regrouped resends can land rows at different sites — but movement
// only relocates rows, so the global multiset is invariant.
func flatRecords(st *durable.State) map[string][]durable.KVState {
	out := map[string][]durable.KVState{}
	for _, ds := range st.Datasets {
		var all []durable.KVState
		for _, site := range ds.Sites {
			all = append(all, site.Records...)
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].Key != all[j].Key {
				return all[i].Key < all[j].Key
			}
			return all[i].Val < all[j].Val
		})
		out[ds.Name] = all
	}
	return out
}

// siteCubes is each dataset's per-site cube state with the raw records
// stripped. Cubes update at the arrival site before any movement, so
// they are exact regardless of batch grouping.
func siteCubes(st *durable.State) map[string][]durable.SiteState {
	out := map[string][]durable.SiteState{}
	for _, ds := range st.Datasets {
		sites := make([]durable.SiteState, len(ds.Sites))
		for i, site := range ds.Sites {
			site.Records = nil
			sites[i] = site
		}
		out[ds.Name] = sites
	}
	return out
}

// TestRecoverEquivalentToNeverCrashed is the durability property: for a
// fixed stream, a server that crashes and recovers at seeded points —
// with seeded snapshot cuts and seeded at-least-once client rewinds —
// must converge to the same logical state as a server that never
// crashed (and never journaled at all): identical offset trackers,
// identical per-site cubes, and an identical global record multiset per
// dataset.
func TestRecoverEquivalentToNeverCrashed(t *testing.T) {
	ctx := context.Background()
	const total = 90
	const source = "prop"
	pcfg := func() ingest.Config {
		return ingest.Config{MaxBatchRecords: 8, FlushInterval: -1, Seed: 11}
	}

	// Control: one pipeline, no journal, no crashes.
	sysC := smallSystem(t)
	bC := NewEngineBackend(sysC)
	feC := New(bC, Config{}, nil)
	pipeC, err := feC.EnableIngest(pcfg())
	if err != nil {
		t.Fatal(err)
	}
	pushRange(t, sysC, pipeC, source, 1, total)
	if err := pipeC.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	wantState := bC.CaptureState()
	wantOffs := pipeC.OffsetsSnapshot()
	if err := pipeC.Close(); err != nil {
		t.Fatal(err)
	}

	// Subject: the same stream interrupted by seeded kills, each
	// recovered into a fresh system over the same directory.
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	sys := smallSystem(t)
	b := NewEngineBackend(sys)
	fe := New(b, Config{}, nil)
	m, err := durable.Open(durable.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	pipe, _, err := fe.EnableDurableIngest(ctx, pcfg(), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	next := uint64(1)
	for crash := 0; crash < 3; crash++ {
		cp := min(next+uint64(5+rng.Intn(20)), total)
		pushRange(t, sys, pipe, source, next, cp)
		if rng.Intn(2) == 0 {
			// A cadence snapshot landed before this crash: recovery
			// takes the restore-then-replay-tail path.
			if err := fe.SnapshotNow(ctx); err != nil {
				t.Fatalf("snapshot before crash %d: %v", crash, err)
			}
		}
		pipe.Kill()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		// The client lost its cursor too: rewind a seeded distance and
		// resend at-least-once.
		next = max(cp+1-uint64(rng.Intn(10)), 1)
		sys = smallSystem(t)
		b = NewEngineBackend(sys)
		fe = New(b, Config{}, nil)
		if m, err = durable.Open(durable.Config{Dir: dir}); err != nil {
			t.Fatal(err)
		}
		if pipe, _, err = fe.EnableDurableIngest(ctx, pcfg(), m, 0); err != nil {
			t.Fatalf("recovering after crash %d: %v", crash, err)
		}
	}
	pushRange(t, sys, pipe, source, next, total)
	if err := pipe.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	gotState := b.CaptureState()
	gotOffs := pipe.OffsetsSnapshot()
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Batch boundaries legitimately differ across the two histories
	// (resends regroup records, which also shifts share-based movement),
	// so the comparison is the batch-invariant state: trackers, per-site
	// cubes, and each dataset's global record multiset.
	if !reflect.DeepEqual(wantOffs, gotOffs) {
		t.Fatalf("offset trackers diverged:\n never-crashed: %+v\n recovered:     %+v",
			wantOffs, gotOffs)
	}
	if want, got := siteCubes(wantState), siteCubes(gotState); !reflect.DeepEqual(want, got) {
		t.Fatalf("per-site cubes diverged:\n never-crashed: %+v\n recovered:     %+v", want, got)
	}
	if want, got := flatRecords(wantState), flatRecords(gotState); !reflect.DeepEqual(want, got) {
		t.Fatalf("record multisets diverged:\n never-crashed: %+v\n recovered:     %+v", want, got)
	}
}
