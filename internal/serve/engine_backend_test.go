package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/obs"
	"bohr/internal/placement"
	"bohr/internal/sql"
	"bohr/internal/workload"
)

// smallSystem prepares a tiny real system (cluster + workload + Bohr
// placement) for end-to-end serving tests.
func smallSystem(t *testing.T) *core.System {
	t.Helper()
	s := experiments.QuickSetup()
	s.Datasets = 1
	s.RowsPerSite = 120
	c, w, err := s.Populated(workload.BigDataScan, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := s.PlacementOptions(0)
	sys, err := core.New(c, w, placement.Bohr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEngineBackendServesRealQueries(t *testing.T) {
	sys := smallSystem(t)
	backend := NewEngineBackend(sys)
	ds := sys.Workload.Datasets[0]

	if backend.Schema("nope") != nil {
		t.Fatal("unknown dataset resolved a schema")
	}
	schema := backend.Schema(ds.Name)
	if schema == nil {
		t.Fatalf("dataset %q has no schema", ds.Name)
	}
	h1, ok := backend.ContentHash(ds.Name)
	if !ok {
		t.Fatalf("dataset %q has no content hash", ds.Name)
	}
	if h2, _ := backend.ContentHash(ds.Name); h2 != h1 {
		t.Fatal("content hash unstable across calls")
	}
	if _, ok := backend.ContentHash("nope"); ok {
		t.Fatal("unknown dataset produced a content hash")
	}

	col := obs.NewCollector(obs.WithWallClock())
	fe := New(backend, Config{}, col)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	dim := schema.Dims()[0]
	query := "SELECT " + dim + ", SUM(measure) FROM " + ds.Name + " GROUP BY " + dim + " LIMIT 5"
	resp, out := postQuery(t, ts.URL, "alice", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Cached || out.RowCount == 0 {
		t.Fatalf("response = %+v, want uncached rows", out)
	}
	// The repeat is a cache hit with identical rows.
	resp2, out2 := postQuery(t, ts.URL, "bob", query)
	if resp2.StatusCode != http.StatusOK || !out2.Cached {
		t.Fatalf("repeat = %d %+v, want cached", resp2.StatusCode, out2)
	}
	if len(out2.Rows) != len(out.Rows) || out2.Rows[0] != out.Rows[0] {
		t.Fatalf("cached rows %v != fresh rows %v", out2.Rows, out.Rows)
	}

	// A pre-cancelled context unwinds inside the engine (chunk-boundary
	// contract) before any work runs.
	plan, err := sql.CompileString(query, schema)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := backend.Run(cancelled, plan); err == nil {
		t.Fatal("cancelled engine run succeeded")
	}
}
