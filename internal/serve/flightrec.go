package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
)

// QueryRecord is one served query as the flight recorder remembers it: a
// compact operational record (who, what, how long, where the time went
// coarsely) that stays cheap enough to keep for every request.
type QueryRecord struct {
	// Seq is the recorder's monotonic sequence number; tail cursors key
	// off it.
	Seq uint64 `json:"seq"`
	// TraceID ties the record to log lines and retained traces.
	TraceID string `json:"trace_id"`
	Tenant  string `json:"tenant"`
	Dataset string `json:"dataset"`
	// Stmt is the normalized statement text; StmtHash is its FNV-1a hash,
	// so repeated shapes group even when the text is elided.
	Stmt     string `json:"stmt"`
	StmtHash string `json:"stmt_hash"`
	// Start is the request arrival time (RFC3339Nano).
	Start string `json:"start"`
	// LatencyS is the end-to-end request latency in seconds; QueueWaitS
	// is the portion spent parked in the fair scheduler.
	LatencyS   float64 `json:"latency_s"`
	QueueWaitS float64 `json:"queue_wait_s"`
	// Cached marks a result-cache hit (no engine execution).
	Cached bool `json:"cached"`
	// Status is "ok", "error", "cancelled", or "rejected".
	Status string `json:"status"`
	Err    string `json:"error,omitempty"`
	// Slow marks records that cleared the recorder's slow threshold.
	Slow bool `json:"slow"`
}

// SlowRecord is a slow query with its full stitched trace and critical-
// path decomposition retained — the evidence an operator needs after the
// fact, kept only for the K slowest so retention stays bounded.
type SlowRecord struct {
	QueryRecord
	Trace    *obs.Span            `json:"trace,omitempty"`
	CritPath []critpath.QueryPath `json:"crit_path,omitempty"`
}

// FlightConfig tunes the recorder. The zero value adopts the defaults
// noted per field.
type FlightConfig struct {
	// RingSize bounds the recent-query ring (default 512).
	RingSize int
	// SlowK bounds how many slow queries keep full traces (default 8).
	SlowK int
	// SlowThreshold is the latency above which a query qualifies as slow
	// (default 250ms; <0 disables slow capture).
	SlowThreshold time.Duration
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.RingSize <= 0 {
		c.RingSize = 512
	}
	if c.SlowK <= 0 {
		c.SlowK = 8
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	return c
}

// FlightStats summarizes the recorder for /v1/stats.
type FlightStats struct {
	// Recorded is the total number of queries ever recorded.
	Recorded uint64 `json:"recorded"`
	// RingLen is how many records the ring currently holds.
	RingLen int `json:"ring_len"`
	// SlowHeld is how many slow queries currently retain full traces.
	SlowHeld int `json:"slow_held"`
	// SlowThresholdS is the slow-capture threshold in seconds.
	SlowThresholdS float64 `json:"slow_threshold_s"`
}

// FlightRecorder is the daemon's bounded query black box: a ring of the
// last RingSize query records, plus full trace + critical-path retention
// for the K slowest queries over the threshold. A nil recorder is a
// valid no-op, so the serving path can run with the plane off.
type FlightRecorder struct {
	mu   sync.Mutex
	cfg  FlightConfig
	ring []QueryRecord
	next int
	seq  uint64
	slow []SlowRecord
}

// NewFlightRecorder builds a recorder.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	return &FlightRecorder{cfg: cfg.withDefaults()}
}

// StmtHash is the canonical statement-shape hash: FNV-1a over the
// normalized statement, hex-encoded.
func StmtHash(normalized string) string {
	h := fnv.New64a()
	h.Write([]byte(normalized))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Record stamps the record's sequence number and stores it; when the
// latency clears the slow threshold, the query's trace and critical-path
// decomposition are retained in the K-slowest set (trace may be nil, e.g.
// for cache hits or backends that cannot trace). Nil-safe.
func (f *FlightRecorder) Record(rec QueryRecord, trace *obs.Span) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.Seq = f.seq
	rec.Slow = f.cfg.SlowThreshold >= 0 && rec.LatencyS >= f.cfg.SlowThreshold.Seconds()
	if len(f.ring) < f.cfg.RingSize {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[f.next] = rec
	}
	f.next = (f.next + 1) % f.cfg.RingSize
	if !rec.Slow {
		return
	}
	sr := SlowRecord{QueryRecord: rec, Trace: trace}
	if trace != nil {
		sr.CritPath = critpath.Analyze(trace, nil)
	}
	if len(f.slow) < f.cfg.SlowK {
		f.slow = append(f.slow, sr)
	} else {
		// Evict the fastest retained slow query if the newcomer beats it.
		minI := 0
		for i, s := range f.slow {
			if s.LatencyS < f.slow[minI].LatencyS {
				minI = i
			}
		}
		if f.slow[minI].LatencyS >= sr.LatencyS {
			return
		}
		f.slow[minI] = sr
	}
}

// Recent returns up to limit records with Seq > after, oldest first
// (limit <= 0 means all). Nil-safe.
func (f *FlightRecorder) Recent(after uint64, limit int) []QueryRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryRecord, 0, len(f.ring))
	// The ring is ordered [next..end) ++ [0..next) oldest-first once full;
	// before that it is simply [0..len).
	start := 0
	if len(f.ring) == f.cfg.RingSize {
		start = f.next
	}
	for i := 0; i < len(f.ring); i++ {
		rec := f.ring[(start+i)%len(f.ring)]
		if rec.Seq > after {
			out = append(out, rec)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Slowest returns the retained slow queries, slowest first. Nil-safe.
func (f *FlightRecorder) Slowest() []SlowRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]SlowRecord(nil), f.slow...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].LatencyS != out[j].LatencyS {
			return out[i].LatencyS > out[j].LatencyS
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Stats summarizes the recorder. Nil-safe: a nil recorder returns nil.
func (f *FlightRecorder) Summary() *FlightStats {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return &FlightStats{
		Recorded:       f.seq,
		RingLen:        len(f.ring),
		SlowHeld:       len(f.slow),
		SlowThresholdS: f.cfg.SlowThreshold.Seconds(),
	}
}
