package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/obs/export"
	"bohr/internal/obs/window"
	"bohr/internal/sql"
)

func TestFlightRecorderRingAndCursor(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{RingSize: 4, SlowThreshold: -1})
	for i := 1; i <= 6; i++ {
		f.Record(QueryRecord{Tenant: fmt.Sprintf("t%d", i)}, nil)
	}
	recent := f.Recent(0, 0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(recent))
	}
	// Oldest-first after wrap: records 3,4,5,6 survive.
	for i, r := range recent {
		if want := uint64(i + 3); r.Seq != want {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
	// Cursor pagination: only records past the cursor come back.
	after := f.Recent(4, 0)
	if len(after) != 2 || after[0].Seq != 5 || after[1].Seq != 6 {
		t.Fatalf("Recent(4) = %+v, want seqs 5,6", after)
	}
	// Limit keeps the newest records.
	limited := f.Recent(0, 2)
	if len(limited) != 2 || limited[0].Seq != 5 {
		t.Fatalf("Recent(0, 2) = %+v, want seqs 5,6", limited)
	}
	if st := f.Summary(); st.Recorded != 6 || st.RingLen != 4 {
		t.Fatalf("stats = %+v, want recorded 6 ring 4", st)
	}
}

func TestFlightRecorderSlowRetention(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{RingSize: 16, SlowK: 2, SlowThreshold: 100 * time.Millisecond})
	trace := fakeQueryTrace()
	f.Record(QueryRecord{Tenant: "fast", LatencyS: 0.01}, trace)
	f.Record(QueryRecord{Tenant: "slow1", LatencyS: 0.2}, trace)
	f.Record(QueryRecord{Tenant: "slow2", LatencyS: 0.5}, trace)
	f.Record(QueryRecord{Tenant: "slow3", LatencyS: 0.3}, trace) // evicts slow1 (0.2)
	f.Record(QueryRecord{Tenant: "slow4", LatencyS: 0.15}, nil)  // too fast for the held set

	slow := f.Slowest()
	if len(slow) != 2 {
		t.Fatalf("held %d slow records, want 2", len(slow))
	}
	if slow[0].Tenant != "slow2" || slow[1].Tenant != "slow3" {
		t.Fatalf("slowest = %s,%s want slow2,slow3", slow[0].Tenant, slow[1].Tenant)
	}
	if slow[0].Trace == nil {
		t.Fatal("slow record dropped its trace")
	}
	if len(slow[0].CritPath) == 0 {
		t.Fatal("slow record has no critical-path decomposition")
	}
	// Ring records carry the slow mark; the fast one does not.
	for _, r := range f.Recent(0, 0) {
		if want := strings.HasPrefix(r.Tenant, "slow"); r.Slow != want {
			t.Fatalf("record %s slow=%v, want %v", r.Tenant, r.Slow, want)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(QueryRecord{}, nil)
	if f.Recent(0, 0) != nil || f.Slowest() != nil || f.Summary() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

// fakeQueryTrace builds a span tree shaped like the engine's per-query
// traces (q%02d:name with phase children), so critpath.Analyze works on it.
func fakeQueryTrace() *obs.Span {
	col := obs.NewCollector()
	sp := col.StartSpan("q00:test")
	sp.Child("map").Add(0.05)
	sp.Child("shuffle").Add(0.02)
	sp.Child("reduce").Add(0.03)
	sp.Add(0.1)
	sp.End()
	return col.Trace()
}

// tracedFakeBackend extends fakeBackend with RunTraced, returning a
// per-query trace the way EngineBackend does, with a controllable delay
// so tests can inject slow queries.
type tracedFakeBackend struct {
	*fakeBackend
	delay time.Duration
}

func (b *tracedFakeBackend) RunTraced(ctx context.Context, plan *sql.Plan) ([]engine.KV, *obs.Span, error) {
	rows, err := b.fakeBackend.Run(ctx, plan)
	if b.delay > 0 {
		select {
		case <-time.After(b.delay):
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return rows, fakeQueryTrace(), err
}

// TestStatsAndFlightrecEndpoints drives the full telemetry plane end to
// end: queries through the front end land in the windowed registry, the
// flight recorder, and the structured log, and come back out of /v1/stats
// and /v1/debug/flightrec. A deliberately slow query must surface in the
// slow set with a critical path — the bohrctl tail acceptance shape.
func TestStatsAndFlightrecEndpoints(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	win := window.New(nil)
	col.SetSink(win)
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&logMu, &logBuf}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	backend := &tracedFakeBackend{fakeBackend: newFakeBackend(t), delay: 30 * time.Millisecond}
	fe := New(backend, Config{
		Flight:  &FlightConfig{RingSize: 8, SlowK: 2, SlowThreshold: 20 * time.Millisecond},
		Windows: win,
		Logger:  logger,
	}, col)
	exp := export.New(col)
	exp.Handle("/v1/", fe.Handler())
	ts := httptest.NewServer(exp.Handler())
	defer ts.Close()

	resp, out := postQuery(t, ts.URL, "alice", "SELECT url, SUM(measure) FROM logs GROUP BY url")
	if resp.StatusCode != http.StatusOK || out.Cached {
		t.Fatalf("query = %d %+v, want fresh 200", resp.StatusCode, out)
	}
	// A cached repeat also lands in the recorder (latency ~0, not slow).
	if _, out = postQuery(t, ts.URL, "bob", "SELECT url, SUM(measure) FROM logs GROUP BY url"); !out.Cached {
		t.Fatal("repeat was not cached")
	}

	var stats StatsDoc
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Windows == nil {
		t.Fatal("stats has no windowed snapshot")
	}
	if got := stats.Windows.Counters["serve.requests"]["1m"].Sum; got != 2 {
		t.Fatalf("windowed serve.requests = %v, want 2", got)
	}
	if got := stats.Windows.Histograms["serve.latency_s"]["1m"].Count; got != 1 {
		t.Fatalf("windowed latency count = %v, want 1 (cache hit records no latency)", got)
	}
	if stats.Flight == nil || stats.Flight.Recorded != 2 {
		t.Fatalf("flight stats = %+v, want 2 recorded", stats.Flight)
	}

	var flight FlightDoc
	getJSON(t, ts.URL+"/v1/debug/flightrec", &flight)
	if len(flight.Recent) != 2 {
		t.Fatalf("flightrec recent = %d records, want 2", len(flight.Recent))
	}
	first := flight.Recent[0]
	if first.Tenant != "alice" || first.TraceID == "" || first.StmtHash == "" || first.Cached {
		t.Fatalf("first record = %+v, want uncached alice with trace + stmt hash", first)
	}
	if !first.Slow {
		t.Fatalf("30ms query over a 20ms threshold not marked slow: %+v", first)
	}
	if len(flight.Slow) != 1 || flight.Slow[0].Trace == nil || len(flight.Slow[0].CritPath) == 0 {
		t.Fatalf("slow set = %+v, want one record with trace and crit path", flight.Slow)
	}
	if !flight.Recent[1].Cached || flight.Recent[1].Slow {
		t.Fatalf("cached record = %+v, want cached and fast", flight.Recent[1])
	}
	// Cursor: nothing new past the last seq.
	var after FlightDoc
	getJSON(t, ts.URL+"/v1/debug/flightrec?after="+fmt.Sprint(flight.Recent[1].Seq)+"&slow=0", &after)
	if len(after.Recent) != 0 || len(after.Slow) != 0 {
		t.Fatalf("after-cursor fetch = %+v, want empty", after)
	}

	// The structured log carries the trace ID and tenant on each line.
	logMu.Lock()
	logText := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(logText, first.TraceID) || !strings.Contains(logText, `"tenant":"alice"`) {
		t.Fatalf("log missing trace/tenant attrs:\n%s", logText)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestHostileTenantCannotCorruptMetrics is the sanitization regression:
// tenant strings with newlines, braces, and quotes must not reach the
// exposition raw — every serve.tenant.* series uses the sanitized label,
// and the ingest path sanitizes source names the same way.
func TestHostileTenantCannotCorruptMetrics(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	fe := New(newFakeBackend(t), Config{}, col)
	exp := export.New(col)
	exp.Handle("/v1/", fe.Handler())
	ts := httptest.NewServer(exp.Handler())
	defer ts.Close()

	hostile := "evil\ntenant{job=\"x\"} 42 # HELP"
	resp, _ := postQuery(t, ts.URL, hostile, "SELECT url, SUM(measure) FROM logs GROUP BY url")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hostile-tenant query status = %d", resp.StatusCode)
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	body, _ := io.ReadAll(metrics.Body)
	text := string(body)
	if strings.Contains(text, "evil") && strings.Contains(text, "# HELP") &&
		strings.Contains(text, `job="x"`) {
		t.Fatalf("raw hostile tenant leaked into exposition:\n%s", text)
	}
	// Every line must be a comment or a bare "name value" sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# TYPE") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	// The sanitized series exist and carry the request.
	san := obs.SanitizeLabel(hostile)
	if san == hostile || strings.ContainsAny(san, "\n{}\" #") {
		t.Fatalf("SanitizeLabel(%q) = %q, still hostile", hostile, san)
	}
	snap := col.MetricsSnapshot()
	if got := snap.Counters["serve.tenant."+san+".requests"]; got != 1 {
		t.Fatalf("sanitized tenant counter = %v, want 1 (have %v)", got, snap.Counters)
	}
	if got := snap.Gauges["serve.tenant."+san+".inflight"]; got != 0 {
		t.Fatalf("sanitized tenant inflight gauge = %v, want 0 after completion", got)
	}
	// Distinct hostile tenants must stay distinct after sanitizing.
	if obs.SanitizeLabel("a{b") == obs.SanitizeLabel("a}b") {
		t.Fatal("sanitization collapsed distinct tenants")
	}
}

// TestConcurrentScrapesUnderLoad hammers /v1/query while concurrently
// scraping /metrics and /v1/stats, then checks no goroutines leak — the
// telemetry plane must be safe to watch while the daemon is busy. Run
// under -race (make race covers ./internal/serve/...).
func TestConcurrentScrapesUnderLoad(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	win := window.New(nil)
	col.SetSink(win)
	backend := &tracedFakeBackend{fakeBackend: newFakeBackend(t)}
	fe := New(backend, Config{
		Sched:   SchedConfig{MaxConcurrent: 4, TenantQuota: 2, MaxQueue: 256},
		Flight:  &FlightConfig{RingSize: 32, SlowThreshold: -1},
		Windows: win,
	}, col)
	exp := export.New(col)
	exp.Handle("/v1/", fe.Handler())
	ts := httptest.NewServer(exp.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g)
			for i := 0; i < 10; i++ {
				query := fmt.Sprintf("SELECT url, SUM(measure) FROM logs WHERE country != 'c%d' GROUP BY url", i%3)
				resp, _ := postQuery(t, ts.URL, tenant, query)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				url := ts.URL + "/metrics"
				if g%2 == 1 {
					url = ts.URL + "/v1/stats"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var stats StatsDoc
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if got := stats.Windows.Counters["serve.requests"]["5m"].Sum; got != 60 {
		t.Fatalf("windowed serve.requests = %v, want 60", got)
	}
	if stats.Flight.Recorded != 60 {
		t.Fatalf("flight recorded = %d, want 60", stats.Flight.Recorded)
	}
	waitFor(t, func() bool { return fe.Scheduler().Inflight() == 0 })
	// Drop pooled keep-alive conns; their read loops are not leaks.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
