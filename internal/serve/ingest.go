package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bohr/internal/ingest"
)

// RowApplier is implemented by backends that accept live row arrivals
// from the streaming-ingest pipeline. ApplyBatch applies one delivered
// batch and returns the names of the datasets it changed, so the serving
// layer can invalidate cached results for them.
type RowApplier interface {
	ApplyBatch(ctx context.Context, b ingest.Batch) (datasets []string, err error)
}

// maxIngestBody bounds one POST /v1/ingest request body (8 MiB — far
// above any sane batch, but enough to stop an unbounded read).
const maxIngestBody = 8 << 20

// EnableIngest builds the streaming-ingestion pipeline over the server's
// backend and mounts POST /v1/ingest on the handler tree. The backend
// must implement RowApplier. Delivered batches apply to the backend and
// then eagerly invalidate the result cache for every affected dataset,
// so a previously cached query recomputes against the new rows. The
// returned pipeline is owned by the caller: Close it on shutdown (it
// drains buffered batches and stops the flush worker).
func (s *Server) EnableIngest(cfg ingest.Config) (*ingest.Pipeline, error) {
	ra, ok := s.backend.(RowApplier)
	if !ok {
		return nil, fmt.Errorf("serve: backend %T does not accept ingest batches", s.backend)
	}
	s.pipe = ingest.New(cfg, ingest.ApplierFunc(func(ctx context.Context, b ingest.Batch) error {
		datasets, err := ra.ApplyBatch(ctx, b)
		if err != nil {
			return err
		}
		for _, ds := range datasets {
			s.InvalidateDataset(ds)
		}
		s.maybeSnapshot()
		return nil
	}), s.col)
	return s.pipe, nil
}

// Pipeline exposes the ingest pipeline (nil before EnableIngest), for
// gauges and tests.
func (s *Server) Pipeline() *ingest.Pipeline { return s.pipe }

// InvalidateDataset drops every cached query result that read the named
// dataset. The ingest path calls it after applying a batch; it is also
// safe to call directly (e.g. from an operator endpoint).
func (s *Server) InvalidateDataset(dataset string) {
	if n := s.results.InvalidateDataset(dataset); n > 0 {
		s.count("serve.ingest.invalidations", float64(n))
	}
}

// serveIngest is POST /v1/ingest: a text/plain body of codec lines (one
// record each, any mix of sources and datasets). Accepted and deduped
// counts come back as JSON; admission-control rejections map to 429 with
// the partial counts, telling the client to back off and resend (the
// offset dedupe makes whole-batch resends safe).
func (s *Server) serveIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.pipe == nil {
		s.fail(w, http.StatusServiceUnavailable, "ingest not enabled")
		return
	}
	s.count("serve.ingest.requests", 1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxIngestBody+1))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxIngestBody {
		s.fail(w, http.StatusRequestEntityTooLarge, "batch over %d bytes", maxIngestBody)
		return
	}
	recs, err := ingest.DecodeBatch(body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.pipe.Push(r.Context(), recs...)
	status := http.StatusOK
	resp := ingest.PushResponse{Accepted: res.Accepted, Deduped: res.Deduped}
	if err != nil {
		resp.Error = err.Error()
		switch {
		case errors.Is(err, ingest.ErrOverloaded):
			status = http.StatusTooManyRequests
		case errors.Is(err, ingest.ErrJournal):
			// The journal is wedged: nothing was acked and resending
			// cannot help until an operator intervenes.
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusBadRequest
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
