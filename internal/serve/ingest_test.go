package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bohr/internal/core"
	"bohr/internal/ingest"
	"bohr/internal/obs"
	"bohr/internal/obs/export"
)

func clusterRecords(sys *core.System, dataset string) int {
	n := 0
	for i := 0; i < sys.Cluster.N(); i++ {
		n += len(sys.Cluster.Data[i].Records(dataset))
	}
	return n
}

// liveRecord builds one ingest record whose first coordinate lands in a
// recognizable "liveA" group; the remaining schema dims vary with the
// offset.
func liveRecord(sys *core.System, source string, off uint64, site int) ingest.Record {
	ds := sys.Workload.Datasets[0]
	coords := make([]string, ds.Schema.NumDims())
	coords[0] = "liveA"
	for j := 1; j < len(coords); j++ {
		coords[j] = fmt.Sprintf("c%d-%d", j, off%4)
	}
	return ingest.Record{
		Source: source, Offset: off, Dataset: ds.Name, Site: site,
		Coords: coords, Measure: 1,
	}
}

// TestIngestInvalidatesCachedQuery is the satellite-2 acceptance: a
// cached query result must not be served once new rows land for its
// dataset.
func TestIngestInvalidatesCachedQuery(t *testing.T) {
	sys := smallSystem(t)
	ds := sys.Workload.Datasets[0]
	col := obs.NewCollector(obs.WithWallClock())
	fe := New(NewEngineBackend(sys), Config{}, col)
	pipe, err := fe.EnableIngest(ingest.Config{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	dim := ds.Schema.Dims()[0]
	query := "SELECT " + dim + ", SUM(measure) FROM " + ds.Name + " GROUP BY " + dim
	if _, out := postQuery(t, ts.URL, "alice", query); out.Cached {
		t.Fatal("first query served from an empty cache")
	}
	if _, out := postQuery(t, ts.URL, "alice", query); !out.Cached {
		t.Fatal("repeat query not cached")
	}

	// New rows land for the dataset and deliver.
	if _, err := pipe.Push(context.Background(),
		liveRecord(sys, "src", 1, 0), liveRecord(sys, "src", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := pipe.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, out := postQuery(t, ts.URL, "alice", query)
	if out.Cached {
		t.Fatal("stale cached result served after new rows landed")
	}
	found := false
	for _, row := range out.Rows {
		if strings.Contains(row.Key, "liveA") {
			found = true
			if row.Val != 2 {
				t.Fatalf("liveA sum = %v, want 2", row.Val)
			}
		}
	}
	if !found {
		t.Fatalf("fresh result misses the ingested group: %+v", out.Rows)
	}
	snap := col.MetricsSnapshot()
	if snap.Counters["serve.ingest.invalidations"] == 0 {
		t.Fatal("invalidation not counted")
	}
}

// applierShim adds a trivial RowApplier to the fakeBackend so endpoint
// plumbing can be tested without a real system.
type applierShim struct {
	*fakeBackend
	mu   sync.Mutex
	got  []ingest.Record
	fail error
}

func (a *applierShim) ApplyBatch(ctx context.Context, b ingest.Batch) ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fail != nil {
		return nil, a.fail
	}
	a.got = append(a.got, b.Records...)
	seen := map[string]bool{}
	var names []string
	for _, r := range b.Records {
		if !seen[r.Dataset] {
			seen[r.Dataset] = true
			names = append(names, r.Dataset)
		}
	}
	return names, nil
}

func TestServeIngestEndpoint(t *testing.T) {
	backend := &applierShim{fakeBackend: newFakeBackend(t)}
	fe := New(backend, Config{}, nil)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	// Before EnableIngest the endpoint is 503.
	resp, err := http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("s|1|logs|0|1|a|b"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-enable status = %d, want 503", resp.StatusCode)
	}

	pipe, err := fe.EnableIngest(ingest.Config{FlushInterval: -1, MaxPending: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	// GET is 405.
	resp, err = http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}

	// Undecodable body is 400.
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader("not a record"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status = %d, want 400", resp.StatusCode)
	}

	// A good batch lands with counts.
	body := string(ingest.EncodeBatch([]ingest.Record{
		{Source: "s", Offset: 1, Dataset: "logs", Site: 0, Coords: []string{"a", "b"}, Measure: 1},
		{Source: "s", Offset: 2, Dataset: "logs", Site: 0, Coords: []string{"c", "d"}, Measure: 2},
	}))
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pr ingest.PushResponse
	json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Accepted != 2 || pr.Deduped != 0 {
		t.Fatalf("push: status %d, %+v", resp.StatusCode, pr)
	}

	// Overflowing MaxPending yields 429 with the partial count.
	var lines strings.Builder
	for off := 3; off <= 10; off++ {
		lines.WriteString(ingest.EncodeRecord(ingest.Record{
			Source: "s", Offset: uint64(off), Dataset: "logs", Site: 0,
			Coords: []string{"x", "y"}, Measure: 1,
		}))
		lines.WriteByte('\n')
	}
	resp, err = http.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(lines.String()))
	if err != nil {
		t.Fatal(err)
	}
	pr = ingest.PushResponse{}
	json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", resp.StatusCode)
	}
	if pr.Accepted != 2 || pr.Error == "" {
		t.Fatalf("overload response %+v, want 2 accepted (cap 4) and an error", pr)
	}
}

func TestEnableIngestRequiresRowApplier(t *testing.T) {
	fe := New(newFakeBackend(t), Config{}, nil)
	if _, err := fe.EnableIngest(ingest.Config{}); err == nil {
		t.Fatal("EnableIngest accepted a backend without ApplyBatch")
	}
}

// faultInjector drops every third /v1/ingest request by aborting the
// connection before the handler runs — the client sees a transport error
// and must retry.
type faultInjector struct {
	inner http.Handler
	mu    sync.Mutex
	n     int
	drops int
}

func (f *faultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/ingest" {
		f.mu.Lock()
		f.n++
		drop := f.n%3 == 0
		if drop {
			f.drops++
		}
		f.mu.Unlock()
		if drop {
			panic(http.ErrAbortHandler)
		}
	}
	f.inner.ServeHTTP(w, r)
}

// TestIngestEndToEndChaos is the PR's acceptance scenario: a source
// streams records through the HTTP endpoint while every third request is
// dropped on the floor, and the source itself restarts mid-stream and
// replays from offset 1. Despite drops, retries, and the replay, no
// record is lost or double-applied, the dedupe counters match the
// replayed offsets, live replans fire, and a previously cached query
// returns fresh results.
func TestIngestEndToEndChaos(t *testing.T) {
	sys := smallSystem(t)
	sys.SetReplanEvery(3)
	ds := sys.Workload.Datasets[0]
	col := obs.NewCollector(obs.WithWallClock())
	fe := New(NewEngineBackend(sys), Config{}, col)
	// Batches of 10 with no timer: deliveries ride the size trigger, so
	// the 60-record stream applies as exactly 6 batches and the replan
	// cadence (every 3) fires twice.
	pipe, err := fe.EnableIngest(ingest.Config{MaxBatchRecords: 10, FlushInterval: -1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	exp := export.New(col)
	exp.Handle("/v1/", fe.Handler())
	inj := &faultInjector{inner: exp.Handler()}
	ts := httptest.NewServer(inj)

	baseline := runtime.NumGoroutine()
	before := clusterRecords(sys, ds.Name)
	dim := ds.Schema.Dims()[0]
	query := "SELECT " + dim + ", SUM(measure) FROM " + ds.Name + " GROUP BY " + dim

	// Warm the result cache.
	postQuery(t, ts.URL, "alice", query)
	if _, out := postQuery(t, ts.URL, "alice", query); !out.Cached {
		t.Fatal("warm-up query not cached")
	}

	const total, crashAt = 60, 30
	ctx := context.Background()
	ccfg := ingest.ClientConfig{BatchRecords: 10, RetryBase: time.Millisecond, Seed: 5}
	stream := func(cli *ingest.Client, from, to uint64) {
		t.Helper()
		for off := from; off <= to; off++ {
			r := liveRecord(sys, "web-tier", off, int(off)%sys.Cluster.N())
			if err := cli.Add(ctx, r.Dataset, r.Site, r.Coords, r.Measure); err != nil {
				t.Fatalf("offset %d: %v", off, err)
			}
		}
		if err := cli.Flush(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// First incarnation delivers offsets 1..30, then "crashes" having lost
	// its cursor.
	stream(ingest.NewClient(ts.URL+"/v1/ingest", "web-tier", ccfg), 1, crashAt)
	// The restart replays the whole stream from offset 1 and continues to
	// 60: offsets 1..30 are dupes, 31..60 fresh.
	cli2 := ingest.NewClient(ts.URL+"/v1/ingest", "web-tier", ccfg)
	stream(cli2, 1, total)
	// Deliver everything buffered.
	if err := pipe.Flush(ctx); err != nil {
		t.Fatalf("final flush: %v", err)
	}

	// Zero lost, zero double-applied.
	if got := clusterRecords(sys, ds.Name); got != before+total {
		t.Fatalf("cluster gained %d records, want %d", got-before, total)
	}
	st := pipe.Stats()
	if st.Accepted != total {
		t.Fatalf("accepted %d, want %d", st.Accepted, total)
	}
	if st.Deduped != crashAt {
		t.Fatalf("deduped %d, want %d (the replayed prefix)", st.Deduped, crashAt)
	}
	if w := pipe.Watermark("web-tier"); w != total {
		t.Fatalf("watermark %d, want %d", w, total)
	}
	if cst := cli2.Stats(); cst.Deduped != crashAt || cst.Accepted != total-crashAt {
		t.Fatalf("client replay stats %+v", cst)
	}
	inj.mu.Lock()
	drops := inj.drops
	inj.mu.Unlock()
	if drops == 0 {
		t.Fatal("fault injector never fired; the test exercised nothing")
	}
	// Live replans fired on the configured cadence.
	if sys.IngestReplans() == 0 {
		t.Fatalf("no live replans after %d batches with cadence 3", sys.IngestBatches())
	}

	// The previously cached query returns fresh results.
	_, out := postQuery(t, ts.URL, "alice", query)
	if out.Cached {
		t.Fatal("stale cached result served after sustained ingest")
	}
	sum := 0.0
	for _, row := range out.Rows {
		if strings.Contains(row.Key, "liveA") {
			sum += row.Val
		}
	}
	if sum != total {
		t.Fatalf("liveA group sums to %v, want %d (each record counted once)", sum, total)
	}

	snap := col.MetricsSnapshot()
	if snap.Counters["ingest.accepted"] != total || snap.Counters["ingest.replay.deduped"] != crashAt {
		t.Fatalf("obs counters: accepted %v deduped %v", snap.Counters["ingest.accepted"], snap.Counters["ingest.replay.deduped"])
	}
	if snap.Counters["serve.ingest.invalidations"] == 0 {
		t.Fatal("cache invalidations not counted")
	}

	// Daemon shutdown: the HTTP server and the pipeline close without
	// leaking goroutines.
	ts.Close()
	if err := pipe.Close(); err != nil {
		t.Fatalf("pipeline close: %v", err)
	}
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}
