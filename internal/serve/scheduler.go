// Package serve is the multi-tenant query front end: a stdlib-HTTP
// endpoint that accepts the internal/sql dialect plus a tenant ID, pushes
// every request through a weighted fair scheduler with per-tenant
// concurrency quotas and queue-depth admission control, and answers
// repeat queries from a result cache keyed by (normalized query, dataset
// content hash). It layers over the reusable engine/core components the
// rest of the reproduction already exercises; cancellation rides the
// request context through the context-first core/engine/netio APIs.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"bohr/internal/obs"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when the scheduler's
// wait queue is at capacity; callers should back off and retry.
var ErrOverloaded = errors.New("serve: queue full, try again later")

// SchedConfig tunes the fair scheduler. The zero value takes every
// default.
type SchedConfig struct {
	// MaxConcurrent bounds queries executing at once across all tenants
	// (default 8).
	MaxConcurrent int
	// TenantQuota bounds one tenant's concurrently executing queries
	// (default 2); excess requests wait in the tenant's FIFO queue.
	TenantQuota int
	// MaxQueue bounds the total number of waiting requests across all
	// tenants; arrivals beyond it are rejected with ErrOverloaded
	// (default 64).
	MaxQueue int
	// Weights maps tenant IDs to scheduling weights (share of grants
	// under contention). Unlisted tenants weigh 1; values <= 0 are
	// treated as 1.
	Weights map[string]float64
}

func (c SchedConfig) withDefaults() SchedConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.TenantQuota <= 0 {
		c.TenantQuota = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	return c
}

// strideScale is the numerator strides are computed from; only ratios
// matter, the constant just keeps passes readable in tests.
const strideScale = 1 << 16

// waiter is one parked Acquire call.
type waiter struct {
	tenant  string
	ready   chan struct{}
	granted bool
}

// tenantState is the scheduler's view of one tenant.
type tenantState struct {
	pass     float64
	stride   float64
	inflight int
	queue    []*waiter
	// metric is the tenant's sanitized metric label: gauges publish as
	// serve.tenant.<metric>.*, so an externally supplied tenant string
	// cannot corrupt or unboundedly pollute the exposition.
	metric string
}

// Scheduler grants execution slots to tenants by stride scheduling: each
// grant advances the tenant's virtual pass by a stride inversely
// proportional to its weight, and free slots go to the eligible tenant
// with the smallest pass (FIFO within a tenant). A tenant at its
// concurrency quota is skipped, so a saturating tenant never starves the
// others; a full wait queue rejects new arrivals instead of buffering
// without bound.
type Scheduler struct {
	mu      sync.Mutex
	cfg     SchedConfig
	tenants map[string]*tenantState
	// inflight and waiting are global levels mirrored onto the collector
	// as serve.inflight / serve.queue.depth.
	inflight int
	waiting  int
	col      *obs.Collector
}

// NewScheduler builds a scheduler; col may be nil.
func NewScheduler(cfg SchedConfig, col *obs.Collector) *Scheduler {
	return &Scheduler{cfg: cfg.withDefaults(), tenants: map[string]*tenantState{}, col: col}
}

func (s *Scheduler) state(tenant string) *tenantState {
	ts, ok := s.tenants[tenant]
	if !ok {
		w := s.cfg.Weights[tenant]
		if w <= 0 {
			w = 1
		}
		// A new tenant starts at the minimum live pass, not zero:
		// joining late must not grant it a catch-up burst.
		ts = &tenantState{stride: strideScale / w, pass: s.minPass(), metric: obs.SanitizeLabel(tenant)}
		s.tenants[tenant] = ts
	}
	return ts
}

// minPass is the smallest pass among tenants with live work; callers
// hold s.mu.
func (s *Scheduler) minPass() float64 {
	min, seen := 0.0, false
	for _, ts := range s.tenants {
		if ts.inflight == 0 && len(ts.queue) == 0 {
			continue
		}
		if !seen || ts.pass < min {
			min, seen = ts.pass, true
		}
	}
	return min
}

// Inflight reports queries currently holding slots (all tenants).
func (s *Scheduler) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// QueueDepth reports requests parked in tenant queues.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiting
}

// TenantInflight reports one tenant's executing queries.
func (s *Scheduler) TenantInflight(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tenants[tenant]; ok {
		return ts.inflight
	}
	return 0
}

// Acquire blocks until the tenant is granted an execution slot, the
// context ends, or the wait queue is full (ErrOverloaded, immediately).
// The returned release function must be called exactly once when the
// query finishes; it hands the slot to the next eligible waiter.
func (s *Scheduler) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: acquire for %q: %w", tenant, err)
	}
	s.mu.Lock()
	ts := s.state(tenant)
	if s.inflight < s.cfg.MaxConcurrent && ts.inflight < s.cfg.TenantQuota && len(ts.queue) == 0 {
		s.grantLocked(tenant, ts)
		s.mu.Unlock()
		return func() { s.release(tenant) }, nil
	}
	if s.waiting >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.count("serve.rejected", 1)
		return nil, ErrOverloaded
	}
	w := &waiter{tenant: tenant, ready: make(chan struct{})}
	ts.queue = append(ts.queue, w)
	s.waiting++
	s.gauge("serve.queue.depth", float64(s.waiting))
	s.mu.Unlock()

	select {
	case <-w.ready:
		return func() { s.release(tenant) }, nil
	case <-ctx.Done():
		s.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; give the slot back.
			s.releaseLocked(tenant)
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: acquire for %q: %w", tenant, ctx.Err())
		}
		for i, q := range ts.queue {
			if q == w {
				ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
				break
			}
		}
		s.waiting--
		s.gauge("serve.queue.depth", float64(s.waiting))
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: acquire for %q: %w", tenant, ctx.Err())
	}
}

// grantLocked charges one grant to the tenant. Callers hold s.mu.
func (s *Scheduler) grantLocked(tenant string, ts *tenantState) {
	ts.pass += ts.stride
	ts.inflight++
	s.inflight++
	s.gauge("serve.inflight", float64(s.inflight))
	s.gauge("serve.tenant."+ts.metric+".inflight", float64(ts.inflight))
}

func (s *Scheduler) release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.releaseLocked(tenant)
}

// releaseLocked frees the tenant's slot and dispatches to waiters.
// Callers hold s.mu.
func (s *Scheduler) releaseLocked(tenant string) {
	ts := s.tenants[tenant]
	ts.inflight--
	s.inflight--
	s.gauge("serve.inflight", float64(s.inflight))
	s.gauge("serve.tenant."+ts.metric+".inflight", float64(ts.inflight))
	s.dispatchLocked()
}

// dispatchLocked hands free slots to waiting tenants in stride order:
// among tenants with queued work and quota headroom, the smallest pass
// wins (name order breaks exact ties, for deterministic tests). Callers
// hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.inflight < s.cfg.MaxConcurrent {
		var best string
		var bestTS *tenantState
		for name, ts := range s.tenants {
			if len(ts.queue) == 0 || ts.inflight >= s.cfg.TenantQuota {
				continue
			}
			if bestTS == nil || ts.pass < bestTS.pass || (ts.pass == bestTS.pass && name < best) {
				best, bestTS = name, ts
			}
		}
		if bestTS == nil {
			return
		}
		w := bestTS.queue[0]
		bestTS.queue = bestTS.queue[1:]
		s.waiting--
		s.gauge("serve.queue.depth", float64(s.waiting))
		s.grantLocked(best, bestTS)
		w.granted = true
		close(w.ready)
	}
}

func (s *Scheduler) gauge(name string, v float64) {
	if s.col != nil {
		s.col.Gauge(name, v)
	}
}

func (s *Scheduler) count(name string, v float64) {
	if s.col != nil {
		s.col.Count(name, v)
	}
}
