package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"bohr/internal/obs"
)

func TestSchedulerImmediateGrantAndRelease(t *testing.T) {
	s := NewScheduler(SchedConfig{MaxConcurrent: 2, TenantQuota: 2}, nil)
	rel1, err := s.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	rel1()
	if got := s.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestSchedulerQueueOverflowRejects(t *testing.T) {
	col := obs.NewCollector()
	s := NewScheduler(SchedConfig{MaxConcurrent: 1, TenantQuota: 1, MaxQueue: 1}, col)
	rel, err := s.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// One waiter fits; the next must bounce.
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := s.Acquire(context.Background(), "b")
		if err == nil {
			r()
		}
	}()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	if _, err := s.Acquire(context.Background(), "c"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire = %v, want ErrOverloaded", err)
	}
	snap := col.MetricsSnapshot()
	if snap.Counters["serve.rejected"] != 1 {
		t.Fatalf("serve.rejected = %v, want 1", snap.Counters["serve.rejected"])
	}
	rel()
	<-done
}

func TestSchedulerAcquireCancellation(t *testing.T) {
	s := NewScheduler(SchedConfig{MaxConcurrent: 1, TenantQuota: 1, MaxQueue: 8}, nil)
	rel, err := s.Acquire(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, "b")
		errc <- err
	}()
	waitFor(t, func() bool { return s.QueueDepth() == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire did not return")
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after cancellation = %d, want 0", got)
	}
	// The slot is untouched: releasing and re-acquiring works.
	rel()
	rel2, err := s.Acquire(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

// TestSchedulerQuotaNonStarvation saturates tenant A far beyond its quota
// and verifies tenant B's requests are still granted promptly.
func TestSchedulerQuotaNonStarvation(t *testing.T) {
	s := NewScheduler(SchedConfig{MaxConcurrent: 2, TenantQuota: 1, MaxQueue: 64}, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Tenant A floods: each granted slot is held briefly, and a fresh
	// request replaces every finished one.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel, err := s.Acquire(context.Background(), "a")
				if err != nil {
					continue
				}
				time.Sleep(time.Millisecond)
				rel()
			}
		}()
	}
	// Tenant B issues 20 sequential requests; every one must be granted
	// well before the flood drains.
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		rel, err := s.Acquire(ctx, "b")
		cancel()
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("tenant B starved on request %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
		rel()
	}
	close(stop)
	wg.Wait()
}

// TestSchedulerWeightedShares parks 30 waiters per tenant behind a held
// slot and replays the grant order: with 3:1 weights and full contention
// the stride schedule must hand the heavy tenant ~3 of every 4 grants
// until its queue drains.
func TestSchedulerWeightedShares(t *testing.T) {
	s := NewScheduler(SchedConfig{
		MaxConcurrent: 1, TenantQuota: 1, MaxQueue: 128,
		Weights: map[string]float64{"heavy": 3, "light": 1},
	}, nil)
	hold, err := s.Acquire(context.Background(), "heavy")
	if err != nil {
		t.Fatal(err)
	}
	const perTenant = 30
	order := make(chan string, 2*perTenant)
	var wg sync.WaitGroup
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"heavy", "light"} {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				rel, err := s.Acquire(context.Background(), tenant)
				if err != nil {
					t.Error(err)
					return
				}
				// inflight is capped at 1, so recording before release
				// makes the channel order the grant order.
				order <- tenant
				rel()
			}(tenant)
		}
	}
	waitFor(t, func() bool { return s.QueueDepth() == 2*perTenant })
	hold()
	wg.Wait()
	close(order)
	heavyIn40 := 0
	for i := 0; i < 40; i++ {
		if <-order == "heavy" {
			heavyIn40++
		}
	}
	// The exact stride pattern grants heavy 30 of the first 40 (its queue
	// drains right then); allow one grant of slack at the window edges.
	if heavyIn40 < 28 || heavyIn40 > 31 {
		t.Fatalf("heavy got %d of the first 40 grants, want ~30 (3:1 weights)", heavyIn40)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
