package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bohr/internal/cache"
	"bohr/internal/core"
	"bohr/internal/durable"
	"bohr/internal/engine"
	"bohr/internal/ingest"
	"bohr/internal/obs"
	"bohr/internal/obs/window"
	"bohr/internal/olap"
	"bohr/internal/sql"
)

// Backend executes compiled statements for the front end. Run must honor
// the context at the engine's chunk boundaries, so cancelled requests
// unwind within one stage.
type Backend interface {
	// Schema resolves a dataset's schema, or nil when unknown.
	Schema(dataset string) *olap.Schema
	// ContentHash returns a stable hash of the dataset's current
	// contents, keying the result cache.
	ContentHash(dataset string) (uint64, bool)
	// Run executes the plan's engine query and returns the raw reduce
	// output (pre ORDER BY / LIMIT).
	Run(ctx context.Context, plan *sql.Plan) ([]engine.KV, error)
}

// EngineBackend serves queries against a prepared core.System: the
// simulated cluster with data already placed, the same substrate bohrctl
// drives. Per-dataset content hashes are memoized and dropped when the
// ingest path lands new rows for a dataset, so the result cache's keys
// track data changes. Queries read under a shared lock; ingest applies
// under the exclusive lock, so live arrivals never race in-flight scans.
type EngineBackend struct {
	sys *core.System

	// stateMu guards the system's mutable serving state: cluster data,
	// cube sets, and the placement plan. Queries and content hashing
	// hold it shared; ingest batch application holds it exclusively.
	stateMu sync.RWMutex

	mu     sync.Mutex
	hashes map[string]uint64
}

// NewEngineBackend wraps a prepared system (Prepare must have run).
func NewEngineBackend(sys *core.System) *EngineBackend {
	return &EngineBackend{sys: sys, hashes: map[string]uint64{}}
}

// Schema resolves the dataset's schema from the system's workload.
func (b *EngineBackend) Schema(dataset string) *olap.Schema {
	for _, ds := range b.sys.Workload.Datasets {
		if ds.Name == dataset {
			return ds.Schema
		}
	}
	return nil
}

// ContentHash hashes the dataset's records across all sites (FNV-1a over
// site, key, value in site order). The hash is memoized until ingest
// invalidates it by landing new rows for the dataset.
func (b *EngineBackend) ContentHash(dataset string) (uint64, bool) {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	if h, ok := b.hashes[dataset]; ok {
		return h, true
	}
	c := b.sys.Cluster
	found := false
	h := fnv.New64a()
	for site := 0; site < c.N(); site++ {
		recs := c.Data[site].Records(dataset)
		if len(recs) == 0 {
			continue
		}
		found = true
		fmt.Fprintf(h, "site=%d;", site)
		for _, kv := range recs {
			fmt.Fprintf(h, "%s=%g;", kv.Key, kv.Val)
		}
	}
	if !found {
		return 0, false
	}
	sum := h.Sum64()
	b.hashes[dataset] = sum
	return sum, true
}

// Run executes the plan under the system's placement. It holds the
// backend's shared state lock, so ingest applies wait for in-flight
// queries and queries never observe a half-applied batch.
func (b *EngineBackend) Run(ctx context.Context, plan *sql.Plan) ([]engine.KV, error) {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	res, err := b.sys.RunQuery(ctx, plan.Query)
	if err != nil {
		return nil, err
	}
	return res.Output, nil
}

// RunTraced executes the plan under a per-query collector and returns the
// query's own trace next to the rows. Metric deltas fold back into the
// system's long-lived collector (so /metrics stays whole), but spans stay
// on the per-query tree — which both hands the flight recorder a
// retainable trace and keeps a long-running daemon's root collector from
// accreting one span subtree per query forever.
func (b *EngineBackend) RunTraced(ctx context.Context, plan *sql.Plan) ([]engine.KV, *obs.Span, error) {
	b.stateMu.RLock()
	defer b.stateMu.RUnlock()
	var col *obs.Collector
	if b.sys.Obs.WallClock() {
		col = obs.NewCollector(obs.WithWallClock())
	} else {
		col = obs.NewCollector()
	}
	res, err := b.sys.RunQueryObs(ctx, plan.Query, col)
	b.sys.Obs.MergeSnapshot(col.MetricsSnapshot())
	if err != nil {
		return nil, col.Trace(), err
	}
	return res.Output, col.Trace(), nil
}

// ApplyBatch implements the ingest pipeline's delivery side over the
// engine backend: records are grouped into per-(dataset, site) arrivals
// in first-seen order, applied to the system under the exclusive state
// lock (cluster data + incremental cube maintenance + plan-directed
// movement + the periodic replan hook), and the affected datasets'
// content-hash memos are dropped so subsequent queries key the result
// cache off the new contents. Batches the system can never apply come
// back Reject-wrapped, telling the pipeline to drop rather than retry.
func (b *EngineBackend) ApplyBatch(ctx context.Context, batch ingest.Batch) ([]string, error) {
	type groupKey struct {
		dataset string
		site    int
	}
	groups := map[groupKey]*core.Arrival{}
	var arrivals []*core.Arrival
	var datasets []string
	seenDS := map[string]bool{}
	for _, r := range batch.Records {
		gk := groupKey{r.Dataset, r.Site}
		g, ok := groups[gk]
		if !ok {
			g = &core.Arrival{Dataset: r.Dataset, Site: r.Site}
			groups[gk] = g
			arrivals = append(arrivals, g)
		}
		g.Rows = append(g.Rows, olap.Row{Coords: r.Coords, Measure: r.Measure})
		if !seenDS[r.Dataset] {
			seenDS[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
	}
	if len(arrivals) == 0 {
		return nil, nil
	}
	flat := make([]core.Arrival, len(arrivals))
	for i, a := range arrivals {
		flat[i] = *a
	}
	b.stateMu.Lock()
	defer b.stateMu.Unlock()
	if _, err := b.sys.IngestBatch(ctx, flat); err != nil {
		if errors.Is(err, core.ErrBadArrival) {
			return nil, ingest.Reject(err)
		}
		return nil, err
	}
	b.mu.Lock()
	for _, ds := range datasets {
		delete(b.hashes, ds)
	}
	b.mu.Unlock()
	return datasets, nil
}

// TracedBackend is the optional backend extension the flight recorder
// uses: Run one query under its own collector and hand back the query's
// trace for slow-query retention.
type TracedBackend interface {
	RunTraced(ctx context.Context, plan *sql.Plan) ([]engine.KV, *obs.Span, error)
}

// Config tunes the front end.
type Config struct {
	// Sched configures the fair scheduler (zero value = defaults).
	Sched SchedConfig
	// CacheCaps bounds the result cache; the zero value adopts the
	// process-wide cache defaults.
	CacheCaps cache.Caps
	// DefaultTimeout caps a request's execution when the client did not
	// send timeout_ms (default 30s; negative disables).
	DefaultTimeout time.Duration
	// Flight enables the flight recorder (per-query records on /v1/debug/
	// flightrec, slow-query trace retention); nil disables it.
	Flight *FlightConfig
	// Windows is the rolling-window metrics registry rendered on
	// /v1/stats; wire it to the daemon's collector with SetSink. Nil omits
	// windowed stats.
	Windows *window.Registry
	// Logger receives structured request logs (per-query lines at Debug,
	// failures at Warn, with tenant and trace ID attached); nil disables
	// logging.
	Logger *slog.Logger
}

// Server is the multi-tenant query front end. Mount Handler on an HTTP
// mux (the telemetry server's, via export.Server.Handle) and POST
// /v1/query documents at it.
type Server struct {
	backend Backend
	sched   *Scheduler
	results *ResultCache
	col     *obs.Collector
	timeout time.Duration
	pipe    *ingest.Pipeline // non-nil after EnableIngest
	flight  *FlightRecorder  // nil when the recorder is off
	win     *window.Registry // nil when windowed stats are off
	log     *slog.Logger     // nil when logging is off
	start   time.Time
	traceHi string // per-process trace ID prefix
	traceLo uint64 // atomic per-request trace sequence

	// Durability wiring (see durable.go; all nil/zero without it).
	dman        *durable.Manager
	dback       DurableBackend
	snapEvery   int
	snapPending atomic.Int64   // applied batches since the last snapshot
	snapBusy    atomic.Bool    // one background snapshot at a time
	snapWG      sync.WaitGroup // tracks the background snapshot goroutine
}

// New assembles a front end over a backend; col may be nil.
func New(b Backend, cfg Config, col *obs.Collector) *Server {
	caps := cfg.CacheCaps
	if caps == (cache.Caps{}) {
		caps = cache.DefaultCaps()
	}
	timeout := cfg.DefaultTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	s := &Server{
		backend: b,
		sched:   NewScheduler(cfg.Sched, col),
		results: NewResultCache(caps, col),
		col:     col,
		timeout: timeout,
		win:     cfg.Windows,
		log:     cfg.Logger,
		start:   time.Now(),
	}
	s.traceHi = fmt.Sprintf("%08x", uint32(s.start.UnixNano()))
	if cfg.Flight != nil {
		s.flight = NewFlightRecorder(*cfg.Flight)
	}
	return s
}

// Flight exposes the flight recorder (nil when disabled), for tests and
// operator tooling.
func (s *Server) Flight() *FlightRecorder { return s.flight }

// nextTraceID mints a process-unique trace ID for one request.
func (s *Server) nextTraceID() string {
	return fmt.Sprintf("%s-%06x", s.traceHi, atomic.AddUint64(&s.traceLo, 1))
}

// Scheduler exposes the fair scheduler (for gauges and tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Tenant identifies the caller for quota and fairness accounting.
	Tenant string `json:"tenant"`
	// Query is one statement in the internal/sql dialect.
	Query string `json:"query"`
	// TimeoutMS caps execution; 0 adopts the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// QueryRow is one result row.
type QueryRow struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
}

// QueryResponse is the POST /v1/query result document.
type QueryResponse struct {
	Tenant    string     `json:"tenant"`
	Rows      []QueryRow `json:"rows"`
	RowCount  int        `json:"row_count"`
	Cached    bool       `json:"cached"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the front end's /v1/ handler tree.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.serveQuery)
	mux.HandleFunc("/v1/ingest", s.serveIngest)
	mux.HandleFunc("/v1/stats", s.serveStats)
	mux.HandleFunc("/v1/debug/flightrec", s.serveFlightrec)
	return mux
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Tenant == "" {
		s.fail(w, http.StatusBadRequest, "tenant is required")
		return
	}
	if req.Query == "" {
		s.fail(w, http.StatusBadRequest, "query is required")
		return
	}
	stmt, err := sql.Parse(req.Query)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	schema := s.backend.Schema(stmt.Dataset)
	if schema == nil {
		s.fail(w, http.StatusNotFound, "unknown dataset %q", stmt.Dataset)
		return
	}
	plan, err := sql.Compile(stmt, schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The request context carries client disconnects; the per-tenant
	// deadline rides on top of it.
	ctx := r.Context()
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	// mt is the tenant's metric-safe label: externally supplied tenant
	// strings must not smuggle structure into registry names.
	mt := obs.SanitizeLabel(req.Tenant)
	norm := Normalize(stmt)
	rec := QueryRecord{
		TraceID:  s.nextTraceID(),
		Tenant:   req.Tenant,
		Dataset:  stmt.Dataset,
		Stmt:     norm,
		StmtHash: StmtHash(norm),
		Start:    start.UTC().Format(time.RFC3339Nano),
	}
	s.count("serve.requests", 1)
	s.count("serve.tenant."+mt+".requests", 1)

	// Result cache: textual variants of one statement over unchanged
	// data are answered without touching the scheduler or the engine.
	var key string
	if hash, ok := s.backend.ContentHash(stmt.Dataset); ok {
		key = s.results.Key(stmt, hash)
		if rows, ok := s.results.Get(key); ok {
			s.count("serve.cache.hits", 1)
			s.count("serve.tenant."+mt+".cache.hits", 1)
			rec.Cached = true
			s.finish(&rec, start, "ok", nil, nil)
			s.reply(w, req.Tenant, plan.PostProcess(rows), true, start)
			return
		}
	}
	s.count("serve.cache.misses", 1)

	waitStart := time.Now()
	release, err := s.sched.Acquire(ctx, req.Tenant)
	rec.QueueWaitS = time.Since(waitStart).Seconds()
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.finish(&rec, start, "rejected", err, nil)
			s.fail(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.count("serve.cancelled", 1)
		s.finish(&rec, start, "cancelled", err, nil)
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer release()

	// With the flight recorder on and a trace-capable backend, the query
	// runs under its own collector so its trace can be retained if slow.
	var rows []engine.KV
	var trace *obs.Span
	if tb, ok := s.backend.(TracedBackend); ok && s.flight != nil {
		rows, trace, err = tb.RunTraced(ctx, plan)
	} else {
		rows, err = s.backend.Run(ctx, plan)
	}
	if err != nil {
		if ctx.Err() != nil {
			s.count("serve.cancelled", 1)
			s.finish(&rec, start, "cancelled", err, trace)
			s.fail(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.finish(&rec, start, "error", err, trace)
		s.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if key != "" {
		s.results.Insert(key, stmt.Dataset, rows)
	}
	s.observe("serve.tenant."+mt+".latency_s", time.Since(start).Seconds())
	s.observe("serve.latency_s", time.Since(start).Seconds())
	s.finish(&rec, start, "ok", nil, trace)
	s.reply(w, req.Tenant, plan.PostProcess(rows), false, start)
}

// finish stamps the record's outcome, hands it to the flight recorder,
// and emits the structured request log line (Debug for ok, Warn for
// everything else) with tenant and trace ID attached.
func (s *Server) finish(rec *QueryRecord, start time.Time, status string, err error, trace *obs.Span) {
	rec.LatencyS = time.Since(start).Seconds()
	rec.Status = status
	if err != nil {
		rec.Err = err.Error()
	}
	s.flight.Record(*rec, trace)
	if s.log == nil {
		return
	}
	lvl := slog.LevelDebug
	if status != "ok" {
		lvl = slog.LevelWarn
	}
	attrs := []any{
		slog.String("trace_id", rec.TraceID),
		slog.String("tenant", rec.Tenant),
		slog.String("dataset", rec.Dataset),
		slog.String("stmt_hash", rec.StmtHash),
		slog.String("status", status),
		slog.Float64("latency_s", rec.LatencyS),
		slog.Float64("queue_wait_s", rec.QueueWaitS),
		slog.Bool("cached", rec.Cached),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	s.log.Log(context.Background(), lvl, "serve: query", attrs...)
}

func (s *Server) reply(w http.ResponseWriter, tenant string, rows []engine.KV, cached bool, start time.Time) {
	out := make([]QueryRow, len(rows))
	for i, kv := range rows {
		out[i] = QueryRow{Key: kv.Key, Val: kv.Val}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(QueryResponse{
		Tenant: tenant, Rows: out, RowCount: len(out),
		Cached: cached, ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) count(name string, v float64)   { s.col.Count(name, v) }
func (s *Server) observe(name string, v float64) { s.col.Observe(name, v) }
