package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/obs/export"
	"bohr/internal/olap"
	"bohr/internal/sql"
)

// fakeBackend answers from a fixed row set; block (when non-nil) parks
// Run until the channel closes or the context ends, modeling a long
// scatter the front end must be able to cancel out of.
type fakeBackend struct {
	schema *olap.Schema
	hash   atomic.Uint64
	rows   []engine.KV
	block  chan struct{}
	runs   atomic.Int64
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	schema, err := olap.NewSchema("url", "country")
	if err != nil {
		t.Fatal(err)
	}
	b := &fakeBackend{schema: schema, rows: []engine.KV{
		{Key: "a", Val: 3}, {Key: "b", Val: 1}, {Key: "c", Val: 2},
	}}
	b.hash.Store(0xabc)
	return b
}

func (b *fakeBackend) Schema(dataset string) *olap.Schema {
	if dataset == "logs" {
		return b.schema
	}
	return nil
}

func (b *fakeBackend) ContentHash(dataset string) (uint64, bool) { return b.hash.Load(), true }

func (b *fakeBackend) Run(ctx context.Context, plan *sql.Plan) ([]engine.KV, error) {
	b.runs.Add(1)
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return nil, fmt.Errorf("fake: run: %w", ctx.Err())
		}
	}
	return b.rows, nil
}

func postQuery(t *testing.T, url, tenant, query string) (*http.Response, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Tenant: tenant, Query: query})
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestServeQueryAndCacheHitVisibleInMetrics(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	backend := newFakeBackend(t)
	fe := New(backend, Config{CacheCaps: cache.Caps{Entries: 16}}, col)
	// Mount /v1/ on the telemetry mux exactly as bohrd serve does, so the
	// test covers the shared-listener wiring too.
	exp := export.New(col)
	exp.Handle("/v1/", fe.Handler())
	ts := httptest.NewServer(exp.Handler())
	defer ts.Close()

	resp, out := postQuery(t, ts.URL, "alice", "SELECT url, SUM(measure) FROM logs GROUP BY url ORDER BY value DESC LIMIT 2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Cached || out.RowCount != 2 || out.Rows[0].Key != "a" {
		t.Fatalf("first response = %+v, want 2 uncached rows led by a", out)
	}
	// Whitespace/case variant from another tenant: served from cache.
	resp, out = postQuery(t, ts.URL, "bob", "select url,  sum(measure) from logs group by url order by value desc limit 2")
	if resp.StatusCode != http.StatusOK || !out.Cached {
		t.Fatalf("variant response = %d %+v, want cached hit", resp.StatusCode, out)
	}
	if got := backend.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times, want 1 (second query cached)", got)
	}
	// Data change (new content hash) must miss.
	backend.hash.Store(0xdef)
	if _, out = postQuery(t, ts.URL, "bob", "SELECT url, SUM(measure) FROM logs GROUP BY url ORDER BY value DESC LIMIT 2"); out.Cached {
		t.Fatal("stale entry served after the content hash changed")
	}

	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(metrics.Body)
	text := buf.String()
	for _, want := range []string{
		"bohr_serve_requests 3",
		"bohr_serve_cache_hits 1",
		"bohr_serve_cache_misses 2",
		"bohr_serve_tenant_alice_requests 1",
		"bohr_serve_tenant_bob_requests 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	fe := New(newFakeBackend(t), Config{}, nil)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"tenant":"","query":"SELECT url FROM logs"}`, http.StatusBadRequest},
		{`{"tenant":"a","query":""}`, http.StatusBadRequest},
		{`{"tenant":"a","query":"SELECT FROM WHERE"}`, http.StatusBadRequest},
		{`{"tenant":"a","query":"SELECT url, SUM(measure) FROM nope GROUP BY url"}`, http.StatusNotFound},
		{`not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("body %q: status = %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestClientDisconnectReleasesSlot cancels the HTTP request mid-query (a
// client disconnect) and verifies the scheduler slot frees, the inflight
// gauge returns to zero, and no goroutines are left behind.
func TestClientDisconnectReleasesSlot(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	backend := newFakeBackend(t)
	backend.block = make(chan struct{}) // park every Run until cancelled
	fe := New(backend, Config{Sched: SchedConfig{MaxConcurrent: 2, TenantQuota: 2}}, col)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{Tenant: "alice", Query: "SELECT url, SUM(measure) FROM logs GROUP BY url"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	waitFor(t, func() bool { return fe.Scheduler().Inflight() == 1 })
	cancel() // client hangs up mid-scatter
	if err := <-errc; err == nil {
		t.Fatal("disconnected request reported success")
	}
	waitFor(t, func() bool { return fe.Scheduler().Inflight() == 0 })
	if got := fe.Scheduler().TenantInflight("alice"); got != 0 {
		t.Fatalf("tenant inflight = %d after disconnect, want 0", got)
	}
	snap := col.MetricsSnapshot()
	if snap.Gauges["serve.inflight"] != 0 {
		t.Fatalf("serve.inflight gauge = %v, want 0", snap.Gauges["serve.inflight"])
	}
	if snap.Counters["serve.cancelled"] != 1 {
		t.Fatalf("serve.cancelled = %v, want 1", snap.Counters["serve.cancelled"])
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDeadlineCancelsQuery sends timeout_ms against a parked backend: the
// request must come back 503 with the slot released.
func TestDeadlineCancelsQuery(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	backend := newFakeBackend(t)
	backend.block = make(chan struct{})
	fe := New(backend, Config{}, col)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	body := `{"tenant":"alice","query":"SELECT url, SUM(measure) FROM logs GROUP BY url","timeout_ms":50}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	waitFor(t, func() bool { return fe.Scheduler().Inflight() == 0 })
}

// TestServe64ConcurrentTenants is the acceptance scenario: 64 tenants
// fire concurrently through a small slot pool; every request completes,
// fair-share accounting holds (no tenant ever exceeds its quota), and
// the queue drains to zero.
func TestServe64ConcurrentTenants(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	backend := newFakeBackend(t)
	fe := New(backend, Config{
		Sched:     SchedConfig{MaxConcurrent: 8, TenantQuota: 2, MaxQueue: 256},
		CacheCaps: cache.Caps{Entries: 4},
	}, col)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	const tenants = 64
	const perTenant = 3
	var wg sync.WaitGroup
	var failures atomic.Int64
	var maxInflight atomic.Int64
	stopWatch := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if n := int64(fe.Scheduler().Inflight()); n > maxInflight.Load() {
				maxInflight.Store(n)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%02d", ti)
			for q := 0; q < perTenant; q++ {
				// Distinct WHERE per tenant defeats the result cache for
				// most requests, keeping the scheduler loaded.
				query := fmt.Sprintf("SELECT url, SUM(measure) FROM logs WHERE country != 'x%d' GROUP BY url", ti%7)
				resp, _ := postQuery(t, ts.URL, tenant, query)
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(ti)
	}
	wg.Wait()
	close(stopWatch)
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed", n, tenants*perTenant)
	}
	if m := maxInflight.Load(); m > 8 {
		t.Fatalf("observed %d concurrent executions, cap 8", m)
	}
	waitFor(t, func() bool { return fe.Scheduler().Inflight() == 0 && fe.Scheduler().QueueDepth() == 0 })
	snap := col.MetricsSnapshot()
	if got := snap.Counters["serve.requests"]; got != tenants*perTenant {
		t.Fatalf("serve.requests = %v, want %d", got, tenants*perTenant)
	}
	if snap.Counters["serve.rejected"] != 0 {
		t.Fatalf("serve.rejected = %v with queue room for all", snap.Counters["serve.rejected"])
	}
}
