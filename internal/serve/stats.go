package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"bohr/internal/ingest"
	"bohr/internal/obs/window"
)

// SchedStats is the scheduler's live shape for /v1/stats.
type SchedStats struct {
	Inflight   int `json:"inflight"`
	QueueDepth int `json:"queue_depth"`
}

// CacheStats is the result cache's live shape for /v1/stats.
type CacheStats struct {
	Entries int `json:"entries"`
}

// StatsDoc is the GET /v1/stats document: the daemon's operational state
// as windowed rates/percentiles plus live queue shapes and per-source
// ingest lag — what `bohrctl top` renders.
type StatsDoc struct {
	UptimeS float64 `json:"uptime_s"`
	// Windows carries the rolling-window metric snapshot (nil when the
	// daemon runs without a window registry).
	Windows *window.Snapshot `json:"windows,omitempty"`
	Sched   SchedStats       `json:"sched"`
	Cache   CacheStats       `json:"cache"`
	// IngestPending is records buffered or in delivery (0 when ingest is
	// off); IngestSources is the per-source observability set.
	IngestPending int                  `json:"ingest_pending"`
	IngestSources []ingest.SourceStats `json:"ingest_sources,omitempty"`
	Flight        *FlightStats         `json:"flight,omitempty"`
}

// FlightDoc is the GET /v1/debug/flightrec document: the recent-query
// ring (optionally after a sequence cursor) and the retained slow set
// with traces and critical paths — what `bohrctl tail` renders.
type FlightDoc struct {
	Stats  *FlightStats  `json:"stats"`
	Recent []QueryRecord `json:"recent"`
	Slow   []SlowRecord  `json:"slow,omitempty"`
}

// Stats assembles the /v1/stats document (also used directly by tests).
func (s *Server) Snapshot() *StatsDoc {
	doc := &StatsDoc{
		UptimeS: time.Since(s.start).Seconds(),
		Windows: s.win.Snapshot(),
		Sched: SchedStats{
			Inflight:   s.sched.Inflight(),
			QueueDepth: s.sched.QueueDepth(),
		},
		Cache:  CacheStats{Entries: s.results.Len()},
		Flight: s.flight.Summary(),
	}
	if s.pipe != nil {
		doc.IngestPending = s.pipe.Pending()
		doc.IngestSources = s.pipe.SourcesSnapshot()
	}
	return doc
}

func (s *Server) serveStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot())
}

// serveFlightrec is GET /v1/debug/flightrec?after=<seq>&limit=<n>&slow=0:
// recent records with Seq > after (oldest first, at most limit), plus the
// slow set unless slow=0.
func (s *Server) serveFlightrec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.flight == nil {
		s.fail(w, http.StatusServiceUnavailable, "flight recorder not enabled")
		return
	}
	q := r.URL.Query()
	after, _ := strconv.ParseUint(q.Get("after"), 10, 64)
	limit, _ := strconv.Atoi(q.Get("limit"))
	doc := &FlightDoc{
		Stats:  s.flight.Summary(),
		Recent: s.flight.Recent(after, limit),
	}
	if q.Get("slow") != "0" {
		doc.Slow = s.flight.Slowest()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}
