package similarity

import (
	"fmt"
	"math"

	"bohr/internal/stats"
)

// LSH implements random-hyperplane locality-sensitive hashing for
// high-dimensional feature vectors — the paper uses LSH to reduce the
// dimensionality of image feature vectors before probing (§4.2).
//
// Each of the bits hyperplanes contributes one sign bit; two vectors'
// signatures differ on a bit with probability θ/π where θ is the angle
// between them, so Hamming similarity estimates cosine similarity.
type LSH struct {
	dim    int
	planes [][]float64
}

// NewLSH creates an LSH with `bits` random hyperplanes over `dim`-
// dimensional vectors, seeded deterministically.
func NewLSH(dim, bits int, seed int64) (*LSH, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("similarity: lsh dimension must be positive, got %d", dim)
	}
	if bits <= 0 {
		return nil, fmt.Errorf("similarity: lsh needs at least one bit, got %d", bits)
	}
	rng := stats.NewRand(seed)
	planes := make([][]float64, bits)
	for i := range planes {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		planes[i] = p
	}
	return &LSH{dim: dim, planes: planes}, nil
}

// Bits returns the signature length in bits.
func (l *LSH) Bits() int { return len(l.planes) }

// Dim returns the expected vector dimensionality.
func (l *LSH) Dim() int { return l.dim }

// Sign computes the bit signature of a vector, packed into uint64 words.
func (l *LSH) Sign(v []float64) ([]uint64, error) {
	if len(v) != l.dim {
		return nil, fmt.Errorf("similarity: lsh sign: vector has dim %d, want %d", len(v), l.dim)
	}
	words := make([]uint64, (len(l.planes)+63)/64)
	for i, p := range l.planes {
		var dot float64
		for j, x := range v {
			dot += p[j] * x
		}
		if dot >= 0 {
			words[i/64] |= 1 << uint(i%64)
		}
	}
	return words, nil
}

// HammingSimilarity returns the fraction of matching signature bits of two
// signatures produced by the same LSH.
func (l *LSH) HammingSimilarity(a, b []uint64) (float64, error) {
	want := (l.Bits() + 63) / 64
	if len(a) != want || len(b) != want {
		return 0, fmt.Errorf("similarity: lsh hamming: signature words %d/%d, want %d", len(a), len(b), want)
	}
	diff := 0
	for i := range a {
		x := a[i] ^ b[i]
		// Mask bits beyond the configured signature length in the last word.
		if i == len(a)-1 {
			if r := l.Bits() % 64; r != 0 {
				x &= (1 << uint(r)) - 1
			}
		}
		diff += popcount(x)
	}
	return 1 - float64(diff)/float64(l.Bits()), nil
}

// EstimateCosine converts a Hamming bit-match fraction into the cosine
// similarity it estimates: cos(π · (1 - match)).
func (l *LSH) EstimateCosine(a, b []uint64) (float64, error) {
	match, err := l.HammingSimilarity(a, b)
	if err != nil {
		return 0, err
	}
	return math.Cos(math.Pi * (1 - match)), nil
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Cosine computes the exact cosine similarity of two vectors, the ground
// truth the LSH estimator approximates. Zero vectors have similarity 0.
func Cosine(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("similarity: cosine: dims %d vs %d", len(a), len(b))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}
