package similarity

import (
	"math"
	"testing"

	"bohr/internal/stats"
)

func TestNewLSHValidation(t *testing.T) {
	if _, err := NewLSH(0, 8, 1); err == nil {
		t.Fatal("dim=0 should error")
	}
	if _, err := NewLSH(4, 0, 1); err == nil {
		t.Fatal("bits=0 should error")
	}
	l, err := NewLSH(4, 100, 1)
	if err != nil || l.Bits() != 100 || l.Dim() != 4 {
		t.Fatalf("lsh: %+v %v", l, err)
	}
}

func TestSignValidation(t *testing.T) {
	l, _ := NewLSH(4, 8, 1)
	if _, err := l.Sign([]float64{1, 2}); err == nil {
		t.Fatal("wrong dim should error")
	}
}

func TestIdenticalVectorsFullMatch(t *testing.T) {
	l, _ := NewLSH(16, 128, 2)
	rng := stats.NewRand(3)
	v := make([]float64, 16)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	a, _ := l.Sign(v)
	b, _ := l.Sign(v)
	m, err := l.HammingSimilarity(a, b)
	if err != nil || m != 1 {
		t.Fatalf("identical vectors match = %v (%v)", m, err)
	}
	cos, _ := l.EstimateCosine(a, b)
	if math.Abs(cos-1) > 1e-9 {
		t.Fatalf("cosine estimate = %v", cos)
	}
}

func TestOppositeVectorsNoMatch(t *testing.T) {
	l, _ := NewLSH(8, 256, 5)
	v := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	neg := make([]float64, len(v))
	for i := range v {
		neg[i] = -v[i]
	}
	a, _ := l.Sign(v)
	b, _ := l.Sign(neg)
	m, _ := l.HammingSimilarity(a, b)
	if m > 0.02 {
		t.Fatalf("opposite vectors matched %v of bits", m)
	}
}

func TestLSHEstimatesCosine(t *testing.T) {
	l, _ := NewLSH(32, 2048, 7)
	rng := stats.NewRand(9)
	for trial := 0; trial < 8; trial++ {
		u := make([]float64, 32)
		w := make([]float64, 32)
		for i := range u {
			u[i] = rng.NormFloat64()
			// w correlated with u to cover mid-range cosines.
			w[i] = 0.7*u[i] + 0.7*rng.NormFloat64()
		}
		exact, _ := Cosine(u, w)
		su, _ := l.Sign(u)
		sw, _ := l.Sign(w)
		est, _ := l.EstimateCosine(su, sw)
		if math.Abs(exact-est) > 0.15 {
			t.Fatalf("trial %d: exact cos %v vs estimate %v", trial, exact, est)
		}
	}
}

func TestHammingValidation(t *testing.T) {
	l, _ := NewLSH(4, 65, 1) // 65 bits → 2 words with a partial last word
	v := []float64{1, 2, 3, 4}
	a, _ := l.Sign(v)
	if len(a) != 2 {
		t.Fatalf("signature words = %d, want 2", len(a))
	}
	if _, err := l.HammingSimilarity(a, a[:1]); err == nil {
		t.Fatal("word mismatch should error")
	}
	// Partial-word masking: similarity of a signature with itself is 1
	// even with junk beyond bit 65 (none here, but the mask path runs).
	m, err := l.HammingSimilarity(a, a)
	if err != nil || m != 1 {
		t.Fatalf("self match = %v (%v)", m, err)
	}
}

func TestCosine(t *testing.T) {
	c, err := Cosine([]float64{1, 0}, []float64{0, 1})
	if err != nil || c != 0 {
		t.Fatalf("orthogonal = %v (%v)", c, err)
	}
	c, _ = Cosine([]float64{2, 0}, []float64{5, 0})
	if c != 1 {
		t.Fatalf("parallel = %v", c)
	}
	c, _ = Cosine([]float64{0, 0}, []float64{1, 1})
	if c != 0 {
		t.Fatalf("zero vector = %v", c)
	}
	if _, err := Cosine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestVSM(t *testing.T) {
	corpus := [][]string{
		{"apple", "banana", "apple"},
		{"banana", "cherry"},
		{"", "apple"},
	}
	v, err := BuildVSM(corpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Dim() != 3 {
		t.Fatalf("dim = %d", v.Dim())
	}
	// apple freq 3 > banana 2 > cherry 1.
	if v.Terms()[0] != "apple" || v.Terms()[1] != "banana" {
		t.Fatalf("term order = %v", v.Terms())
	}
	vec := v.Vector([]string{"apple", "apple", "unknown", "cherry"})
	if vec[0] != 2 || vec[2] != 1 {
		t.Fatalf("vector = %v", vec)
	}
	// maxTerms truncation.
	v2, _ := BuildVSM(corpus, 2)
	if v2.Dim() != 2 {
		t.Fatalf("truncated dim = %d", v2.Dim())
	}
	if _, err := BuildVSM(nil, 0); err == nil {
		t.Fatal("empty corpus should error")
	}
	if _, err := BuildVSM([][]string{{""}}, 0); err == nil {
		t.Fatal("corpus of empty tokens should error")
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("GET /index.html?q=1 HTTP/1.1")
	want := []string{"get", "index", "html", "q", "1", "http", "1", "1"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty text should yield no tokens")
	}
}

func TestVSMLSHPipeline(t *testing.T) {
	// End-to-end: similar documents should LSH-hash to similar signatures.
	corpus := [][]string{
		Tokenize("user clicked product page checkout"),
		Tokenize("user clicked product page cart"),
		Tokenize("server error disk failure alert"),
	}
	v, err := BuildVSM(corpus, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLSH(v.Dim(), 512, 11)
	if err != nil {
		t.Fatal(err)
	}
	sign := func(doc []string) []uint64 {
		s, err := l.Sign(v.Vector(doc))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s0, s1, s2 := sign(corpus[0]), sign(corpus[1]), sign(corpus[2])
	near, _ := l.HammingSimilarity(s0, s1)
	far, _ := l.HammingSimilarity(s0, s2)
	if near <= far {
		t.Fatalf("similar docs (%v) should out-match dissimilar (%v)", near, far)
	}
}
