// Package similarity implements Bohr's similarity checking machinery (§4):
// probe construction from OLAP dimension cubes, cross-site similarity
// scoring, minhash signatures, locality-sensitive hashing for
// high-dimensional feature vectors, and the vector space model used to
// turn image-like data into feature vectors.
package similarity

import (
	"fmt"
	"math"
	"time"

	"bohr/internal/parallel"
)

// sigTuner sizes the worker count for batch signature computation from
// the measured per-set cost, so small batches stay inline instead of
// paying pool dispatch. Worker count never affects the output (results
// merge in index order), so the timing-driven choice is invisible.
var sigTuner = parallel.NewTuner()

// MinHasher computes m-function minhash signatures over string sets, the
// estimator behind Jaccard similarity checks. Signatures of two sets agree
// on each hash function with probability equal to their Jaccard index.
type MinHasher struct {
	seeds []uint64
}

// NewMinHasher creates a hasher with m independent hash functions derived
// deterministically from seed.
func NewMinHasher(m int, seed int64) (*MinHasher, error) {
	if m <= 0 {
		return nil, fmt.Errorf("similarity: minhash needs at least one function, got %d", m)
	}
	seeds := make([]uint64, m)
	z := uint64(seed)
	for i := range seeds {
		// SplitMix64 step: decorrelated per-function seeds.
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		seeds[i] = x ^ (x >> 31)
	}
	return &MinHasher{seeds: seeds}, nil
}

// M returns the number of hash functions.
func (h *MinHasher) M() int { return len(h.seeds) }

// FNV-style constants for baseHash's word lanes (the classic FNV prime
// with two decorrelated offset bases, one per lane).
const (
	fnvOffset64  uint64 = 14695981039346656037
	fnvOffset64b uint64 = 0x9e3779b97f4a7c15
	fnvPrime64   uint64 = 1099511628211
)

// load64 reads 8 little-endian bytes of s at offset j. The bounds are the
// caller's responsibility; the compiler inlines this to a single load.
func load64(s string, j int) uint64 {
	return uint64(s[j]) | uint64(s[j+1])<<8 | uint64(s[j+2])<<16 | uint64(s[j+3])<<24 |
		uint64(s[j+4])<<32 | uint64(s[j+5])<<40 | uint64(s[j+6])<<48 | uint64(s[j+7])<<56
}

// baseHash hashes a key once; per-function values are derived by mixing
// the base hash with each function's seed through a full-avalanche
// finalizer, which gives a family that is close enough to min-wise
// independent for Jaccard estimation. Same two-lane SWAR scheme as the
// olap fold's key hash: two independent FNV lanes over alternating
// 8-byte words (halving the serial xor-multiply dependency chain that
// dominates a byte-at-a-time FNV), the tail read as one zero-padded
// word, combined through a murmur-style avalanche. Internal to the
// signature computation, never persisted, so it only needs to be fast
// and well mixed — not stable across releases.
func baseHash(key string) uint64 {
	h1, h2 := fnvOffset64, fnvOffset64b
	n := len(key)
	j := 0
	for ; j+16 <= n; j += 16 {
		w1 := uint64(key[j]) | uint64(key[j+1])<<8 | uint64(key[j+2])<<16 | uint64(key[j+3])<<24 |
			uint64(key[j+4])<<32 | uint64(key[j+5])<<40 | uint64(key[j+6])<<48 | uint64(key[j+7])<<56
		w2 := uint64(key[j+8]) | uint64(key[j+9])<<8 | uint64(key[j+10])<<16 | uint64(key[j+11])<<24 |
			uint64(key[j+12])<<32 | uint64(key[j+13])<<40 | uint64(key[j+14])<<48 | uint64(key[j+15])<<56
		h1 = (h1 ^ w1) * fnvPrime64
		h2 = (h2 ^ w2) * fnvPrime64
	}
	if j+8 <= n {
		w := uint64(key[j]) | uint64(key[j+1])<<8 | uint64(key[j+2])<<16 | uint64(key[j+3])<<24 |
			uint64(key[j+4])<<32 | uint64(key[j+5])<<40 | uint64(key[j+6])<<48 | uint64(key[j+7])<<56
		h1 = (h1 ^ w) * fnvPrime64
		j += 8
	}
	if j < n {
		var w uint64
		for k := 0; j+k < n; k++ {
			w |= uint64(key[j+k]) << (8 * uint(k))
		}
		// Fold the key length into the tail word's high byte so "a" and
		// "a\x00" (and other zero-padding collisions) hash apart.
		h2 = (h2 ^ (w | uint64(uint8(n))<<56)) * fnvPrime64
	}
	h := h1 ^ (h2 * fnvPrime64)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// mix64 is the SplitMix64 finalizer: every input bit affects every output
// bit.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Signature computes the minhash signature of a key set. An empty set
// yields an all-max signature that matches nothing.
func (h *MinHasher) Signature(keys []string) []uint64 {
	sig := make([]uint64, len(h.seeds))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, k := range keys {
		b := baseHash(k)
		for i, s := range h.seeds {
			if v := mix64(b ^ s); v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// SignatureBatch computes the signatures of many key sets through the
// worker pool (width <= 0 ⇒ parallel.DefaultWidth). Each signature is an
// independent pure computation and results are merged in index order, so
// the output is identical at every width — the batch entry point DIMSUM
// and the signature cache use.
func (h *MinHasher) SignatureBatch(keysets [][]string, width int) [][]uint64 {
	workers := sigTuner.Workers(len(keysets), parallel.Resolve(width))
	t0 := time.Now()
	out, _ := parallel.MapOrdered(workers, len(keysets), func(i int) ([]uint64, error) {
		return h.Signature(keysets[i]), nil
	})
	sigTuner.Observe(len(keysets), workers, time.Since(t0))
	return out
}

// EstimateJaccard estimates the Jaccard index of the two sets behind the
// signatures: the fraction of hash functions on which they agree.
// Signatures must come from the same MinHasher.
func EstimateJaccard(a, b []uint64) (float64, error) {
	if len(a) != len(b) || len(a) == 0 {
		return 0, fmt.Errorf("similarity: signatures have lengths %d and %d", len(a), len(b))
	}
	match := 0
	for i := range a {
		if a[i] == b[i] && a[i] != math.MaxUint64 {
			match++
		}
	}
	return float64(match) / float64(len(a)), nil
}

// ExactJaccard computes the exact Jaccard index |X∩Y| / |X∪Y| of two key
// sets, the ground truth the minhash estimator approximates. Two empty
// sets have Jaccard 0 by convention here (nothing to combine).
func ExactJaccard(x, y []string) float64 {
	if len(x) == 0 && len(y) == 0 {
		return 0
	}
	xs := make(map[string]bool, len(x))
	for _, k := range x {
		xs[k] = true
	}
	ys := make(map[string]bool, len(y))
	for _, k := range y {
		ys[k] = true
	}
	inter := 0
	for k := range xs {
		if ys[k] {
			inter++
		}
	}
	union := len(xs) + len(ys) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// WeightedJaccard computes the Jaccard index generalized to multisets
// (a.k.a. the Ruzicka similarity): Σ min(cx, cy) / Σ max(cx, cy) over key
// counts. It measures the fraction of records that would combine when the
// two multisets are co-located, which is the quantity Bohr's combiner
// actually benefits from.
func WeightedJaccard(x, y map[string]int) float64 {
	var num, den float64
	seen := make(map[string]bool, len(x)+len(y))
	for k, cx := range x {
		cy := y[k]
		num += float64(min(cx, cy))
		den += float64(max(cx, cy))
		seen[k] = true
	}
	for k, cy := range y {
		if !seen[k] {
			den += float64(cy)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
