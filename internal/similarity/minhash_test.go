package similarity

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
)

func TestNewMinHasherValidation(t *testing.T) {
	if _, err := NewMinHasher(0, 1); err == nil {
		t.Fatal("m=0 should error")
	}
	h, err := NewMinHasher(16, 1)
	if err != nil || h.M() != 16 {
		t.Fatalf("m=16: %v %v", h, err)
	}
}

func TestSignatureDeterministic(t *testing.T) {
	h, _ := NewMinHasher(32, 7)
	a := h.Signature([]string{"x", "y", "z"})
	b := h.Signature([]string{"z", "y", "x"}) // order must not matter
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature should be order-independent")
		}
	}
}

func TestIdenticalSetsJaccardOne(t *testing.T) {
	h, _ := NewMinHasher(64, 3)
	s := h.Signature([]string{"a", "b", "c"})
	j, err := EstimateJaccard(s, s)
	if err != nil || j != 1 {
		t.Fatalf("identical sets: j=%v err=%v", j, err)
	}
}

func TestDisjointSetsJaccardNearZero(t *testing.T) {
	h, _ := NewMinHasher(128, 3)
	a := h.Signature([]string{"a1", "a2", "a3", "a4"})
	b := h.Signature([]string{"b1", "b2", "b3", "b4"})
	j, _ := EstimateJaccard(a, b)
	if j > 0.1 {
		t.Fatalf("disjoint sets estimated at %v", j)
	}
}

func TestEmptySetMatchesNothing(t *testing.T) {
	h, _ := NewMinHasher(32, 3)
	empty := h.Signature(nil)
	j, err := EstimateJaccard(empty, empty)
	if err != nil || j != 0 {
		t.Fatalf("two empty sets should estimate 0, got %v (%v)", j, err)
	}
}

func TestEstimateJaccardValidation(t *testing.T) {
	if _, err := EstimateJaccard([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := EstimateJaccard(nil, nil); err == nil {
		t.Fatal("empty signatures should error")
	}
}

func TestMinhashEstimatesExactJaccard(t *testing.T) {
	h, _ := NewMinHasher(512, 9)
	rng := stats.NewRand(4)
	for trial := 0; trial < 10; trial++ {
		var x, y []string
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(300))
			if rng.Float64() < 0.6 {
				x = append(x, k)
			}
			if rng.Float64() < 0.6 {
				y = append(y, k)
			}
		}
		exact := ExactJaccard(x, y)
		est, _ := EstimateJaccard(h.Signature(x), h.Signature(y))
		if math.Abs(exact-est) > 0.12 {
			t.Fatalf("trial %d: exact %v vs estimate %v", trial, exact, est)
		}
	}
}

func TestExactJaccard(t *testing.T) {
	cases := []struct {
		x, y []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"b", "c"}, 1.0 / 3},
		{[]string{"a"}, []string{"a"}, 1},
		{[]string{"a"}, []string{"b"}, 0},
		{nil, nil, 0},
		{[]string{"a", "a", "b"}, []string{"a", "b", "b"}, 1}, // set semantics
	}
	for _, c := range cases {
		if got := ExactJaccard(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ExactJaccard(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestWeightedJaccard(t *testing.T) {
	x := map[string]int{"a": 3, "b": 1}
	y := map[string]int{"a": 1, "c": 2}
	// min: a=1; max: a=3, b=1, c=2 → 1/6
	if got := WeightedJaccard(x, y); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("WeightedJaccard = %v", got)
	}
	if got := WeightedJaccard(nil, nil); got != 0 {
		t.Fatalf("empty multisets = %v", got)
	}
	if got := WeightedJaccard(x, x); got != 1 {
		t.Fatalf("self weighted jaccard = %v, want 1", got)
	}
}

// Property: exact Jaccard is symmetric and within [0,1]; weighted Jaccard
// lower-bounds nothing but stays within [0,1] and is symmetric.
func TestJaccardProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		mk := func() ([]string, map[string]int) {
			var s []string
			m := map[string]int{}
			for i := 0; i < rng.Intn(50); i++ {
				k := fmt.Sprintf("k%d", rng.Intn(30))
				s = append(s, k)
				m[k]++
			}
			return s, m
		}
		xs, xm := mk()
		ys, ym := mk()
		e1, e2 := ExactJaccard(xs, ys), ExactJaccard(ys, xs)
		w1, w2 := WeightedJaccard(xm, ym), WeightedJaccard(ym, xm)
		return e1 == e2 && w1 == w2 && e1 >= 0 && e1 <= 1 && w1 >= 0 && w1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSignature1000Keys(b *testing.B) {
	h, _ := NewMinHasher(64, 1)
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Signature(keys)
	}
}
