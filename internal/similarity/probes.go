package similarity

import (
	"fmt"
	"sort"

	"bohr/internal/olap"
	"bohr/internal/parallel"
)

// ProbeRecord is one representative record inside a probe: the coordinates
// of a cell in the sender's dimension cube plus how many raw records that
// cell clusters.
type ProbeRecord struct {
	Coords []string
	Count  int
}

// Probe carries representative records of one query type's dimension cube
// from the bottleneck site to other sites (§4.2). Probes are deliberately
// tiny compared to the dataset.
type Probe struct {
	Dataset    string
	QueryType  olap.QueryTypeID
	Records    []ProbeRecord
	TotalCount int // total raw records in the sender's dimension cube
}

// BuildProbe selects the top-k cells of a dimension cube by cluster size —
// the paper's "top-k records according to the record cluster size".
func BuildProbe(dataset string, qt olap.QueryTypeID, cube *olap.Cube, k int) (Probe, error) {
	if k <= 0 {
		return Probe{}, fmt.Errorf("similarity: probe needs k > 0, got %d", k)
	}
	cells := cube.TopCells(k)
	recs := make([]ProbeRecord, len(cells))
	for i, c := range cells {
		recs[i] = ProbeRecord{Coords: c.Coords, Count: c.Count}
	}
	return Probe{
		Dataset:    dataset,
		QueryType:  qt,
		Records:    recs,
		TotalCount: cube.TotalCount(),
	}, nil
}

// QueryTypeWeight is the share of a dataset's queries belonging to one
// query type; weights across a dataset's types should sum to ~1.
type QueryTypeWeight struct {
	QueryType olap.QueryTypeID
	Dims      []string
	Weight    float64
}

// BuildProbes splits a total budget of k records across a dataset's query
// types proportionally to their weights (§4.2: "we choose k records in
// total for all query types, by considering the relative weight of each
// query type"), building one probe per type from its dimension cube in the
// CubeSet. Every type with positive weight receives at least one record.
func BuildProbes(dataset string, cs *olap.CubeSet, weights []QueryTypeWeight, k int) ([]Probe, error) {
	if k <= 0 {
		return nil, fmt.Errorf("similarity: probe budget must be positive, got %d", k)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("similarity: no query types for dataset %q", dataset)
	}
	var totalW float64
	for _, w := range weights {
		if w.Weight < 0 {
			return nil, fmt.Errorf("similarity: negative weight for query type %q", w.QueryType)
		}
		totalW += w.Weight
	}
	if totalW == 0 {
		return nil, fmt.Errorf("similarity: all query type weights are zero for dataset %q", dataset)
	}
	probes := make([]Probe, 0, len(weights))
	for _, w := range weights {
		if w.Weight == 0 {
			continue
		}
		share := int(float64(k)*w.Weight/totalW + 0.5)
		if share < 1 {
			share = 1
		}
		dc, err := cs.Prepare(w.QueryType)
		if err != nil {
			return nil, fmt.Errorf("similarity: dataset %q: %w", dataset, err)
		}
		p, err := BuildProbe(dataset, w.QueryType, dc, share)
		if err != nil {
			return nil, err
		}
		probes = append(probes, p)
	}
	return probes, nil
}

// Score is the receiving site's similarity check (§4.2): the fraction of
// the SENDER's records that provably combine at this site — the mass of
// probe records with a matching local cell, over the sender's total record
// count. A probe can only vouch for the mass it carries, so unprobed mass
// counts as dissimilar; larger probes (bigger k) therefore surface more of
// the true similarity, which is exactly the accuracy-versus-k trade-off
// Figures 12/13 of the paper measure. The result is in [0, 1].
func Score(p Probe, local *olap.Cube) (float64, error) {
	if len(p.Records) == 0 {
		return 0, nil // nothing to match: no evidence of similarity
	}
	if local.Schema().NumDims() != probeDims(p) {
		return 0, fmt.Errorf("similarity: probe %q/%s has %d dims, local cube has %d",
			p.Dataset, p.QueryType, probeDims(p), local.Schema().NumDims())
	}
	var matched float64
	for _, r := range p.Records {
		if _, ok := local.Lookup(r.Coords...); ok {
			matched += float64(r.Count)
		}
	}
	if p.TotalCount <= 0 {
		return 0, nil
	}
	return matched / float64(p.TotalCount), nil
}

// ScoreCovered is Score normalized by the probe's own mass instead of the
// sender's total: the match rate among probed records only, ignoring
// coverage. Useful for diagnostics and for callers that track coverage
// separately.
func ScoreCovered(p Probe, local *olap.Cube) (float64, error) {
	if len(p.Records) == 0 {
		return 0, nil
	}
	if local.Schema().NumDims() != probeDims(p) {
		return 0, fmt.Errorf("similarity: probe %q/%s has %d dims, local cube has %d",
			p.Dataset, p.QueryType, probeDims(p), local.Schema().NumDims())
	}
	var matched, total float64
	for _, r := range p.Records {
		total += float64(r.Count)
		if _, ok := local.Lookup(r.Coords...); ok {
			matched += float64(r.Count)
		}
	}
	if total == 0 {
		return 0, nil
	}
	return matched / total, nil
}

func probeDims(p Probe) int {
	if len(p.Records) == 0 {
		return 0
	}
	return len(p.Records[0].Coords)
}

// SelfSimilarity is S_i of the paper's Table 1: the combiner-reduction
// fraction of a site's own data for one query type. With n raw records
// collapsing into c distinct cells the combiner removes (n-c)/n of the
// intermediate records.
func SelfSimilarity(cube *olap.Cube) float64 {
	n := cube.TotalCount()
	if n == 0 {
		return 0
	}
	return 1 - float64(cube.NumCells())/float64(n)
}

// RankedCell is a source cell ordered for similarity-aware movement.
type RankedCell struct {
	Coords []string
	Count  int
	// DstCount is how many records the destination already clusters at
	// these coordinates; moving cells with large DstCount first maximizes
	// combining at the destination.
	DstCount int
}

// RankForDestination orders the source cube's cells for movement toward a
// destination cube: cells whose coordinates the destination already holds
// come first (largest destination cluster first), then the remaining cells
// by descending local size. This is the "similarity search ... sorts the
// data" preparation of §4.1 applied to a concrete destination.
func RankForDestination(src, dst *olap.Cube) ([]RankedCell, error) {
	if !src.Schema().Equal(dst.Schema()) {
		return nil, fmt.Errorf("similarity: rank: schema mismatch %v vs %v",
			src.Schema().Dims(), dst.Schema().Dims())
	}
	cells := src.Cells()
	out := make([]RankedCell, len(cells))
	for i, c := range cells {
		rc := RankedCell{Coords: c.Coords, Count: c.Count}
		if d, ok := dst.Lookup(c.Coords...); ok {
			rc.DstCount = d.Count
		}
		out[i] = rc
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].DstCount > 0) != (out[j].DstCount > 0) {
			return out[i].DstCount > 0
		}
		if out[i].DstCount != out[j].DstCount {
			return out[i].DstCount > out[j].DstCount
		}
		return out[i].Count > out[j].Count
	})
	return out, nil
}

// CrossSiteMatrix computes the pairwise similarity S_{i,j} for one dataset
// and query type given each site's dimension cube: entry (i, j) is the
// score of site i's probe against site j's cube. The diagonal holds each
// site's self-similarity S_i.
//
// Probe construction and per-row scoring fan out over the worker pool —
// both only read the cubes (safe under Cube's concurrency contract) and
// each matrix entry is computed independently, so the result is
// identical at every pool width.
func CrossSiteMatrix(dataset string, qt olap.QueryTypeID, cubes []*olap.Cube, k int) ([][]float64, error) {
	n := len(cubes)
	probes, err := parallel.MapOrdered(0, n, func(i int) (Probe, error) {
		return BuildProbe(dataset, qt, cubes[i], k)
	})
	if err != nil {
		return nil, err
	}
	return parallel.MapOrdered(0, n, func(i int) ([]float64, error) {
		row := make([]float64, n)
		for j := range cubes {
			if i == j {
				row[j] = SelfSimilarity(cubes[i])
				continue
			}
			s, err := Score(probes[i], cubes[j])
			if err != nil {
				return nil, err
			}
			row[j] = s
		}
		return row, nil
	})
}
