package similarity

import (
	"fmt"
	"testing"

	"bohr/internal/olap"
	"bohr/internal/stats"
)

// urlCube builds a single-dimension cube with the given key→count map.
func urlCube(t *testing.T, counts map[string]int) *olap.Cube {
	t.Helper()
	c := olap.NewCube(olap.MustSchema("url"))
	for k, n := range counts {
		for i := 0; i < n; i++ {
			if err := c.Insert(olap.Row{Coords: []string{k}, Measure: 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func TestBuildProbeTopK(t *testing.T) {
	cube := urlCube(t, map[string]int{"a": 5, "b": 3, "c": 1, "d": 1})
	p, err := BuildProbe("ds", "url", cube, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != 2 {
		t.Fatalf("probe size = %d", len(p.Records))
	}
	if p.Records[0].Coords[0] != "a" || p.Records[0].Count != 5 {
		t.Fatalf("largest cluster first: %+v", p.Records[0])
	}
	if p.Records[1].Coords[0] != "b" {
		t.Fatalf("second cluster: %+v", p.Records[1])
	}
	if p.TotalCount != 10 {
		t.Fatalf("TotalCount = %d", p.TotalCount)
	}
	if _, err := BuildProbe("ds", "url", cube, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestScore(t *testing.T) {
	src := urlCube(t, map[string]int{"a": 6, "b": 3, "c": 1})
	p, _ := BuildProbe("ds", "url", src, 3)

	// Destination has a and c but not b: matched mass (6+1) over the
	// sender's 10 records.
	dst := urlCube(t, map[string]int{"a": 1, "c": 2, "z": 5})
	s, err := Score(p, dst)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0.7 {
		t.Fatalf("score = %v, want 0.7", s)
	}

	// A fully matching destination scores 1 when the probe covers the
	// whole cube (k=3 covers all three keys here).
	if s, _ := Score(p, src); s != 1 {
		t.Fatalf("self score = %v", s)
	}

	// Coverage matters: a k=1 probe of the same data can vouch for at most
	// its own mass (6 of 10 records).
	small, _ := BuildProbe("ds", "url", src, 1)
	if s, _ := Score(small, src); s != 0.6 {
		t.Fatalf("k=1 self score = %v, want 0.6 (coverage-limited)", s)
	}
	// ScoreCovered ignores coverage: among probed records all match.
	if s, _ := ScoreCovered(small, src); s != 1 {
		t.Fatalf("covered score = %v, want 1", s)
	}

	// Disjoint destination scores 0.
	disjoint := urlCube(t, map[string]int{"x": 3})
	if s, _ := Score(p, disjoint); s != 0 {
		t.Fatalf("disjoint score = %v", s)
	}
}

func TestScoreSchemaMismatch(t *testing.T) {
	src := urlCube(t, map[string]int{"a": 1})
	p, _ := BuildProbe("ds", "url", src, 1)
	two := olap.NewCube(olap.MustSchema("x", "y"))
	_ = two.Insert(olap.Row{Coords: []string{"a", "b"}})
	if _, err := Score(p, two); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestScoreEmptyProbe(t *testing.T) {
	empty := olap.NewCube(olap.MustSchema("url"))
	p, _ := BuildProbe("ds", "url", empty, 5)
	dst := urlCube(t, map[string]int{"a": 1})
	s, err := Score(p, dst)
	if err != nil || s != 0 {
		t.Fatalf("empty probe score = %v err=%v", s, err)
	}
}

func TestSelfSimilarity(t *testing.T) {
	// 10 records in 4 cells → combiner removes 6/10.
	c := urlCube(t, map[string]int{"a": 5, "b": 3, "c": 1, "d": 1})
	if got := SelfSimilarity(c); got != 0.6 {
		t.Fatalf("SelfSimilarity = %v, want 0.6", got)
	}
	if got := SelfSimilarity(olap.NewCube(olap.MustSchema("k"))); got != 0 {
		t.Fatalf("empty cube similarity = %v", got)
	}
	// All-distinct data has zero similarity.
	d := urlCube(t, map[string]int{"a": 1, "b": 1})
	if got := SelfSimilarity(d); got != 0 {
		t.Fatalf("distinct data similarity = %v", got)
	}
}

func TestBuildProbesWeightSplit(t *testing.T) {
	cs := olap.NewCubeSet(olap.MustSchema("url", "country"))
	for i := 0; i < 50; i++ {
		_ = cs.Insert(olap.Row{Coords: []string{fmt.Sprintf("u%d", i%7), fmt.Sprintf("c%d", i%3)}, Measure: 1})
	}
	idURL, _ := cs.RegisterQueryType([]string{"url"})
	idCty, _ := cs.RegisterQueryType([]string{"country"})
	weights := []QueryTypeWeight{
		{QueryType: idURL, Dims: []string{"url"}, Weight: 0.8},
		{QueryType: idCty, Dims: []string{"country"}, Weight: 0.2},
	}
	probes, err := BuildProbes("ds", cs, weights, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 2 {
		t.Fatalf("probe count = %d", len(probes))
	}
	byType := map[olap.QueryTypeID]Probe{}
	for _, p := range probes {
		byType[p.QueryType] = p
	}
	// 0.8 of 30 = 24 but only 7 distinct urls exist; 0.2 of 30 = 6 but only
	// 3 countries exist.
	if got := len(byType[idURL].Records); got != 7 {
		t.Fatalf("url probe records = %d, want 7 (cube exhausted)", got)
	}
	if got := len(byType[idCty].Records); got != 3 {
		t.Fatalf("country probe records = %d, want 3", got)
	}
}

func TestBuildProbesPaperExample(t *testing.T) {
	// §4.2: 500 queries, one type with 100 queries → weight 0.2; k=30 →
	// 6 records for that type.
	cs := olap.NewCubeSet(olap.MustSchema("a", "b"))
	for i := 0; i < 100; i++ {
		_ = cs.Insert(olap.Row{Coords: []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)}, Measure: 1})
	}
	idA, _ := cs.RegisterQueryType([]string{"a"})
	idB, _ := cs.RegisterQueryType([]string{"b"})
	weights := []QueryTypeWeight{
		{QueryType: idA, Weight: 0.2},
		{QueryType: idB, Weight: 0.8},
	}
	probes, err := BuildProbes("ds", cs, weights, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range probes {
		if p.QueryType == idA && len(p.Records) != 6 {
			t.Fatalf("weight-0.2 type got %d records, want 6", len(p.Records))
		}
		if p.QueryType == idB && len(p.Records) != 24 {
			t.Fatalf("weight-0.8 type got %d records, want 24", len(p.Records))
		}
	}
}

func TestBuildProbesValidation(t *testing.T) {
	cs := olap.NewCubeSet(olap.MustSchema("a"))
	id, _ := cs.RegisterQueryType([]string{"a"})
	w := []QueryTypeWeight{{QueryType: id, Weight: 1}}
	if _, err := BuildProbes("ds", cs, w, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := BuildProbes("ds", cs, nil, 10); err == nil {
		t.Fatal("no query types should error")
	}
	if _, err := BuildProbes("ds", cs, []QueryTypeWeight{{QueryType: id, Weight: -1}}, 10); err == nil {
		t.Fatal("negative weight should error")
	}
	if _, err := BuildProbes("ds", cs, []QueryTypeWeight{{QueryType: id, Weight: 0}}, 10); err == nil {
		t.Fatal("all-zero weights should error")
	}
	if _, err := BuildProbes("ds", cs, []QueryTypeWeight{{QueryType: "bogus", Weight: 1}}, 10); err == nil {
		t.Fatal("unknown query type should error")
	}
}

func TestRankForDestinationSimilarFirst(t *testing.T) {
	src := urlCube(t, map[string]int{"a": 5, "b": 4, "c": 3, "d": 2})
	dst := urlCube(t, map[string]int{"c": 10, "d": 1, "z": 7})
	ranked, err := RankForDestination(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d cells", len(ranked))
	}
	// c (dst 10) first, then d (dst 1), then a/b by local size.
	if ranked[0].Coords[0] != "c" || ranked[1].Coords[0] != "d" {
		t.Fatalf("similar cells should rank first: %+v", ranked[:2])
	}
	if ranked[2].Coords[0] != "a" || ranked[3].Coords[0] != "b" {
		t.Fatalf("dissimilar cells by local size: %+v", ranked[2:])
	}
}

func TestRankForDestinationSchemaMismatch(t *testing.T) {
	src := urlCube(t, map[string]int{"a": 1})
	other := olap.NewCube(olap.MustSchema("different"))
	if _, err := RankForDestination(src, other); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestCrossSiteMatrix(t *testing.T) {
	a := urlCube(t, map[string]int{"x": 4, "y": 4}) // S = 1 - 2/8 = .75
	b := urlCube(t, map[string]int{"x": 2, "z": 2}) // shares x with a
	c := urlCube(t, map[string]int{"q": 1, "r": 1}) // disjoint
	m, err := CrossSiteMatrix("ds", "url", []*olap.Cube{a, b, c}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 0.75 {
		t.Fatalf("diagonal should be self-similarity: %v", m[0][0])
	}
	if m[0][1] != 0.5 { // probe {x:4,y:4}; only x matches → 4/8
		t.Fatalf("S(a→b) = %v, want 0.5", m[0][1])
	}
	if m[0][2] != 0 || m[2][0] != 0 {
		t.Fatalf("disjoint sites should score 0: %v / %v", m[0][2], m[2][0])
	}
}

// Property: score is always within [0,1] and self-score of a non-empty
// cube is 1.
func TestScoreBoundsProperty(t *testing.T) {
	rng := stats.NewRand(12)
	for trial := 0; trial < 30; trial++ {
		counts := map[string]int{}
		for i := 0; i < 1+rng.Intn(40); i++ {
			counts[fmt.Sprintf("k%d", rng.Intn(20))]++
		}
		cube := urlCube(t, counts)
		p, _ := BuildProbe("ds", "url", cube, 1+rng.Intn(10))
		other := urlCube(t, map[string]int{fmt.Sprintf("k%d", rng.Intn(20)): 1})
		s, err := Score(p, other)
		if err != nil || s < 0 || s > 1 {
			t.Fatalf("score out of bounds: %v (%v)", s, err)
		}
		// Self score equals the probe's coverage of its own cube and never
		// exceeds 1; the covered variant is exactly 1 against itself.
		self, _ := Score(p, cube)
		if self <= 0 || self > 1 {
			t.Fatalf("self score = %v", self)
		}
		if covered, _ := ScoreCovered(p, cube); covered != 1 {
			t.Fatalf("covered self score = %v", covered)
		}
	}
}
