package similarity

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestMinHashEstimateWithinStatisticalBound is a property test: across
// random key-set pairs spanning the Jaccard range, the m-hash estimate
// must land within ~3.5 standard errors of the exact Jaccard similarity
// (σ = sqrt(J(1−J)/m)), plus a small absolute floor for the J≈0 and J≈1
// edges where σ vanishes. Seeds are fixed, so the test is deterministic;
// a failure means the sketch is biased, not that we got unlucky.
func TestMinHashEstimateWithinStatisticalBound(t *testing.T) {
	const m = 256
	h, err := NewMinHasher(m, 42)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		shared := rng.Intn(400)
		onlyA := rng.Intn(400)
		onlyB := rng.Intn(400)
		if shared+onlyA == 0 {
			onlyA = 1 // keep both sets non-empty
		}
		if shared+onlyB == 0 {
			onlyB = 1
		}
		var a, b []string
		for i := 0; i < shared; i++ {
			k := fmt.Sprintf("shared-%d-%d", trial, i)
			a = append(a, k)
			b = append(b, k)
		}
		for i := 0; i < onlyA; i++ {
			a = append(a, fmt.Sprintf("a-%d-%d", trial, i))
		}
		for i := 0; i < onlyB; i++ {
			b = append(b, fmt.Sprintf("b-%d-%d", trial, i))
		}
		exact := ExactJaccard(a, b)
		est, err := EstimateJaccard(h.Signature(a), h.Signature(b))
		if err != nil {
			t.Fatal(err)
		}
		bound := 3.5*math.Sqrt(exact*(1-exact)/m) + 0.02
		if diff := math.Abs(est - exact); diff > bound {
			t.Errorf("trial %d (|A∩B|=%d |A\\B|=%d |B\\A|=%d): estimate %.4f vs exact %.4f, diff %.4f exceeds bound %.4f",
				trial, shared, onlyA, onlyB, est, exact, diff, bound)
		}
	}
}

// TestMinHashIdenticalAndDisjointSets pins the estimator's edges: equal
// sets must estimate exactly 1, disjoint sets must estimate near 0.
func TestMinHashIdenticalAndDisjointSets(t *testing.T) {
	h, err := NewMinHasher(256, 9)
	if err != nil {
		t.Fatal(err)
	}
	same := []string{"x", "y", "z", "w"}
	est, err := EstimateJaccard(h.Signature(same), h.Signature(same))
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Errorf("identical sets estimate %v, want exactly 1", est)
	}
	var a, b []string
	for i := 0; i < 200; i++ {
		a = append(a, fmt.Sprintf("left-%d", i))
		b = append(b, fmt.Sprintf("right-%d", i))
	}
	est, err = EstimateJaccard(h.Signature(a), h.Signature(b))
	if err != nil {
		t.Fatal(err)
	}
	if est > 0.06 {
		t.Errorf("disjoint sets estimate %v, want near 0", est)
	}
}
