package similarity

import (
	"sync"

	"bohr/internal/cache"
	"bohr/internal/obs"
	"bohr/internal/parallel"
)

// Counter names the signature cache registers on an attached collector.
// They flow into core.Report via the metrics snapshot. The backing
// store additionally registers similarity.sigcache.{entries,bytes,
// evictions} level counters.
const (
	CounterSigCacheHits   = "similarity.sigcache.hits"
	CounterSigCacheMisses = "similarity.sigcache.misses"
)

// sigCacheMetricPrefix names the bounded store's level counters.
const sigCacheMetricPrefix = "similarity.sigcache"

// HashKeys returns the order-sensitive content hash of a key set, the
// same two-lane word-at-a-time SWAR fold as baseHash so the recurring
// rounds that hash every partition's key list pay ~1/8th the serial
// xor-multiply chain of a byte-at-a-time FNV. Every key ends with one
// frame word folding a terminator and the key's length, so ["ab"] and
// ["a","b"] (and zero-padding shapes generally) hash differently.
// Partition key lists in the engine are deterministic, which makes this
// hash a stable identity for "the same partition content seen again"
// across recurring rounds; it lives only in in-memory cache keys and is
// never persisted, so the value is free to change between releases.
func HashKeys(keys []string) uint64 {
	h1, h2 := fnvOffset64, fnvOffset64b
	for _, k := range keys {
		n := len(k)
		j := 0
		for ; j+16 <= n; j += 16 {
			h1 = (h1 ^ load64(k, j)) * fnvPrime64
			h2 = (h2 ^ load64(k, j+8)) * fnvPrime64
		}
		if j+8 <= n {
			h1 = (h1 ^ load64(k, j)) * fnvPrime64
			j += 8
		}
		var w uint64
		for b := 0; j+b < n; b++ {
			w |= uint64(k[j+b]) << (8 * uint(b))
		}
		// Frame word: the tail bytes (≤ 7, so bits 48+ are free), a
		// terminator, and the key length.
		h2 = (h2 ^ (w | 0x1e<<48 | uint64(uint8(n))<<56)) * fnvPrime64
	}
	return h1 ^ (h2 * fnvPrime64)
}

// sigBytes estimates the resident size of one cached signature: the
// slice backing array plus header and map-entry overhead.
func sigBytes(_ uint64, sig []uint64) int64 {
	return int64(8*len(sig) + 48)
}

// SignatureCache memoizes minhash signatures by partition content hash,
// so recurring placement rounds skip re-hashing partitions whose key
// sets did not change. Entries additionally mix in the hasher's first
// per-function seed, so one cache can safely serve differently-seeded
// hashers without cross-talk. The backing store is bounded
// (cache.DefaultCaps by default) with deterministic LRU eviction;
// drivers advance its logical clock once per placement round via
// Advance, and new content hashes from a long dynamic run age out
// instead of growing without bound.
//
// The zero of the pointer type is valid: a nil *SignatureCache passes
// every batch straight through to the hasher.
type SignatureCache struct {
	mu     sync.Mutex
	store  *cache.Store[uint64, []uint64]
	hits   uint64
	misses uint64
	col    *obs.Collector
}

// NewSignatureCache creates a cache bounded by the process-wide default
// capacities. A non-nil collector receives the hit/miss and store-level
// counters (registered immediately at zero so they appear in metrics
// snapshots before the first batch).
func NewSignatureCache(col *obs.Collector) *SignatureCache {
	return NewSignatureCacheSized(col, cache.DefaultCaps())
}

// NewSignatureCacheSized creates a cache with explicit capacity limits
// (cache.Unlimited() disables eviction).
func NewSignatureCacheSized(col *obs.Collector, caps cache.Caps) *SignatureCache {
	col.Count(CounterSigCacheHits, 0)
	col.Count(CounterSigCacheMisses, 0)
	return &SignatureCache{
		store: cache.New[uint64, []uint64](sigCacheMetricPrefix, caps, col, sigBytes),
		col:   col,
	}
}

// Advance moves the cache's logical clock one round forward and evicts
// over capacity. Call from sequential driver code at round boundaries.
func (c *SignatureCache) Advance() {
	if c == nil {
		return
	}
	c.store.Advance()
}

// Stats reports cumulative cache hits and misses.
func (c *SignatureCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached signatures.
func (c *SignatureCache) Len() int {
	if c == nil {
		return 0
	}
	return c.store.Len()
}

// Bytes reports the estimated resident bytes of cached signatures.
func (c *SignatureCache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.store.Bytes()
}

// Evictions reports how many signatures have been evicted over capacity.
func (c *SignatureCache) Evictions() uint64 {
	if c == nil {
		return 0
	}
	return c.store.Evictions()
}

// SignatureBatch is MinHasher.SignatureBatch with memoization: cached
// key sets are served by content hash, the rest are computed on the
// worker pool and stored. Duplicate key sets within one batch are
// deduplicated before the pooled compute — the first occurrence counts
// as the sole miss, later occurrences count as hits and share its
// result — so misses reflect unique work. Results are positionally
// identical to the uncached batch (cached signatures were computed by
// the same pure function), so caching never perturbs determinism.
// Callers must not mutate the returned signatures — they are shared
// with the cache.
func (c *SignatureCache) SignatureBatch(h *MinHasher, keysets [][]string, width int) [][]uint64 {
	if c == nil {
		return h.SignatureBatch(keysets, width)
	}
	tag := h.seeds[0]
	out := make([][]uint64, len(keysets))
	hashes := make([]uint64, len(keysets))
	var missIdx []int       // first occurrence per unique uncached hash
	var dupIdx []int        // later occurrences, filled after compute
	pos := map[uint64]int{} // uncached hash -> position in missIdx
	var hits, misses uint64
	for i, ks := range keysets {
		hashes[i] = mix64(HashKeys(ks) ^ tag)
		if sig, ok := c.store.Get(hashes[i]); ok {
			out[i] = sig
			hits++
			continue
		}
		if _, pending := pos[hashes[i]]; pending {
			dupIdx = append(dupIdx, i)
			hits++
			continue
		}
		pos[hashes[i]] = len(missIdx)
		missIdx = append(missIdx, i)
		misses++
	}
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
	c.col.Count(CounterSigCacheHits, float64(hits))
	c.col.Count(CounterSigCacheMisses, float64(misses))
	if len(missIdx) == 0 {
		return out
	}
	sigs, _ := parallel.MapOrdered(width, len(missIdx), func(j int) ([]uint64, error) {
		return h.Signature(keysets[missIdx[j]]), nil
	})
	for j, i := range missIdx {
		out[i] = sigs[j]
		c.store.Put(hashes[i], sigs[j])
	}
	for _, i := range dupIdx {
		out[i] = sigs[pos[hashes[i]]]
	}
	return out
}
