package similarity

import (
	"sync"

	"bohr/internal/obs"
	"bohr/internal/parallel"
)

// Counter names the signature cache registers on an attached collector.
// They flow into core.Report via the metrics snapshot.
const (
	CounterSigCacheHits   = "similarity.sigcache.hits"
	CounterSigCacheMisses = "similarity.sigcache.misses"
)

// HashKeys returns the order-sensitive FNV-1a content hash of a key set.
// Keys are framed by a terminator byte below the printable range, so
// ["ab"] and ["a","b"] hash differently. Partition key lists in the
// engine are deterministic, which makes this hash a stable identity for
// "the same partition content seen again" across recurring rounds.
func HashKeys(keys []string) uint64 {
	h := fnvOffset64
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= fnvPrime64
		}
		h ^= 0x1e // frame terminator, below any printable key byte
		h *= fnvPrime64
	}
	return h
}

// SignatureCache memoizes minhash signatures by partition content hash,
// so recurring placement rounds skip re-hashing partitions whose key
// sets did not change. Entries additionally mix in the hasher's first
// per-function seed, so one cache can safely serve differently-seeded
// hashers without cross-talk. There is no eviction — see ROADMAP "Open
// items"; partition populations per run are bounded and rounds reuse,
// not grow, the key space.
//
// The zero of the pointer type is valid: a nil *SignatureCache passes
// every batch straight through to the hasher.
type SignatureCache struct {
	mu      sync.Mutex
	entries map[uint64][]uint64
	hits    uint64
	misses  uint64
	col     *obs.Collector
}

// NewSignatureCache creates an empty cache. A non-nil collector receives
// the hit/miss counters (registered immediately at zero so they appear
// in metrics snapshots before the first batch).
func NewSignatureCache(col *obs.Collector) *SignatureCache {
	col.Count(CounterSigCacheHits, 0)
	col.Count(CounterSigCacheMisses, 0)
	return &SignatureCache{entries: make(map[uint64][]uint64), col: col}
}

// Stats reports cumulative cache hits and misses.
func (c *SignatureCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached signatures.
func (c *SignatureCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SignatureBatch is MinHasher.SignatureBatch with memoization: cached
// key sets are served by content hash, the rest are computed on the
// worker pool and stored. Results are positionally identical to the
// uncached batch (cached signatures were computed by the same pure
// function), so caching never perturbs determinism. Callers must not
// mutate the returned signatures — they are shared with the cache.
func (c *SignatureCache) SignatureBatch(h *MinHasher, keysets [][]string, width int) [][]uint64 {
	if c == nil {
		return h.SignatureBatch(keysets, width)
	}
	tag := h.seeds[0]
	out := make([][]uint64, len(keysets))
	hashes := make([]uint64, len(keysets))
	var missIdx []int
	c.mu.Lock()
	for i, ks := range keysets {
		hashes[i] = mix64(HashKeys(ks) ^ tag)
		if sig, ok := c.entries[hashes[i]]; ok {
			out[i] = sig
			c.hits++
		} else {
			missIdx = append(missIdx, i)
			c.misses++
		}
	}
	c.mu.Unlock()
	c.col.Count(CounterSigCacheHits, float64(len(keysets)-len(missIdx)))
	c.col.Count(CounterSigCacheMisses, float64(len(missIdx)))
	if len(missIdx) == 0 {
		return out
	}
	sigs, _ := parallel.MapOrdered(width, len(missIdx), func(j int) ([]uint64, error) {
		return h.Signature(keysets[missIdx[j]]), nil
	})
	c.mu.Lock()
	for j, i := range missIdx {
		out[i] = sigs[j]
		c.entries[hashes[i]] = sigs[j]
	}
	c.mu.Unlock()
	return out
}
