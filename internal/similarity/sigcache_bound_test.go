package similarity

import (
	"fmt"
	"reflect"
	"testing"

	"bohr/internal/cache"
	"bohr/internal/obs"
)

// TestSignatureBatchDedupesWithinBatch is the regression test for the
// PR 4 bug where duplicate key sets inside one batch each landed in the
// miss list: the same signature was computed N times and misses were
// over-counted. One batch with 3 copies of one set and 2 of another
// must compute 2 signatures, count 2 misses, and return the shared
// result at every position.
func TestSignatureBatchDedupesWithinBatch(t *testing.T) {
	h, err := NewMinHasher(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := []string{"k1", "k2", "k3"}
	b := []string{"k4", "k5"}
	batch := [][]string{a, b, a, a, b}

	col := obs.NewCollector()
	c := NewSignatureCache(col)
	got := c.SignatureBatch(h, batch, 2)

	hits, misses := c.Stats()
	if misses != 2 {
		t.Fatalf("misses = %d, want 2 (unique sets only)", misses)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (in-batch duplicates)", hits)
	}
	if c.Len() != 2 {
		t.Fatalf("cache entries = %d, want 2", c.Len())
	}
	wantA, wantB := h.Signature(a), h.Signature(b)
	for i, want := range [][]uint64{wantA, wantB, wantA, wantA, wantB} {
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("slot %d signature wrong", i)
		}
	}
	snap := col.MetricsSnapshot()
	if snap.Counters[CounterSigCacheMisses] != 2 || snap.Counters[CounterSigCacheHits] != 3 {
		t.Fatalf("collector hits/misses = %v/%v, want 3/2",
			snap.Counters[CounterSigCacheHits], snap.Counters[CounterSigCacheMisses])
	}

	// Warm repeat: all five are plain hits now.
	_ = c.SignatureBatch(h, batch, 2)
	hits, misses = c.Stats()
	if hits != 8 || misses != 2 {
		t.Fatalf("warm stats = %d/%d, want 8/2", hits, misses)
	}
}

// TestSignatureCacheEviction checks the bounded store underneath: old
// content hashes age out LRU at round boundaries and the level counters
// follow.
func TestSignatureCacheEviction(t *testing.T) {
	h, err := NewMinHasher(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	c := NewSignatureCacheSized(col, cache.Caps{Entries: 4})
	for round := 0; round < 10; round++ {
		batch := make([][]string, 3)
		for i := range batch {
			batch[i] = []string{fmt.Sprintf("r%d-%d", round, i)}
		}
		_ = c.SignatureBatch(h, batch, 1)
		c.Advance()
		if c.Len() > 4 {
			t.Fatalf("round %d: %d entries over cap", round, c.Len())
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions under a 4-entry cap with 30 unique sets")
	}
	snap := col.MetricsSnapshot()
	if snap.Counters["similarity.sigcache.entries"] != float64(c.Len()) {
		t.Fatalf("entries counter %v != Len %d",
			snap.Counters["similarity.sigcache.entries"], c.Len())
	}
	if snap.Counters["similarity.sigcache.evictions"] != float64(c.Evictions()) {
		t.Fatalf("evictions counter %v != %d",
			snap.Counters["similarity.sigcache.evictions"], c.Evictions())
	}
	if snap.Counters["similarity.sigcache.bytes"] != float64(c.Bytes()) {
		t.Fatalf("bytes counter %v != %d",
			snap.Counters["similarity.sigcache.bytes"], c.Bytes())
	}
}
