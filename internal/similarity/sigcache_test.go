package similarity

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bohr/internal/obs"
	"bohr/internal/olap"
	"bohr/internal/parallel"
)

func testKeysets(rng *rand.Rand, sets, keys int) [][]string {
	out := make([][]string, sets)
	for i := range out {
		ks := make([]string, keys)
		for j := range ks {
			ks[j] = fmt.Sprintf("key-%d", rng.Intn(keys*3))
		}
		out[i] = ks
	}
	return out
}

// TestSignatureBatchMatchesSignature checks the pooled batch kernel
// returns exactly what per-set Signature calls return, at every width.
func TestSignatureBatchMatchesSignature(t *testing.T) {
	h, err := NewMinHasher(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	keysets := testKeysets(rand.New(rand.NewSource(1)), 37, 50)
	want := make([][]uint64, len(keysets))
	for i, ks := range keysets {
		want[i] = h.Signature(ks)
	}
	for _, width := range []int{1, 2, 4, 8} {
		got := h.SignatureBatch(keysets, width)
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("width %d set %d slot %d: %d != %d", width, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestSignatureCacheHitsAndCounters checks the content-hash memo: a
// repeated batch is served entirely from cache, counters flow to the
// attached collector, and cached results equal fresh ones.
func TestSignatureCacheHitsAndCounters(t *testing.T) {
	h, err := NewMinHasher(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	cache := NewSignatureCache(col)
	keysets := testKeysets(rand.New(rand.NewSource(2)), 20, 40)

	first := cache.SignatureBatch(h, keysets, 0)
	hits, misses := cache.Stats()
	if hits != 0 || misses != 20 {
		t.Fatalf("cold batch: hits=%d misses=%d, want 0/20", hits, misses)
	}
	second := cache.SignatureBatch(h, keysets, 0)
	hits, misses = cache.Stats()
	if hits != 20 || misses != 20 {
		t.Fatalf("warm batch: hits=%d misses=%d, want 20/20", hits, misses)
	}
	for i := range first {
		for j := range first[i] {
			if first[i][j] != second[i][j] {
				t.Fatalf("cached signature %d slot %d drifted", i, j)
			}
		}
	}
	snap := col.MetricsSnapshot()
	if got := snap.Counters[CounterSigCacheHits]; got != 20 {
		t.Errorf("collector hit counter %v, want 20", got)
	}
	if got := snap.Counters[CounterSigCacheMisses]; got != 20 {
		t.Errorf("collector miss counter %v, want 20", got)
	}
}

// TestSignatureCacheSeedIsolation checks that two hashers with different
// seeds sharing one cache never serve each other's entries.
func TestSignatureCacheSeedIsolation(t *testing.T) {
	h1, _ := NewMinHasher(64, 5)
	h2, _ := NewMinHasher(64, 6)
	cache := NewSignatureCache(nil)
	keysets := [][]string{{"a", "b", "c"}}
	s1 := cache.SignatureBatch(h1, keysets, 0)
	s2 := cache.SignatureBatch(h2, keysets, 0)
	if _, misses := cache.Stats(); misses != 2 {
		t.Fatalf("two hashers, one keyset: misses=%d, want 2 (no cross-seed sharing)", misses)
	}
	same := true
	for j := range s1[0] {
		if s1[0][j] != s2[0][j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical signatures — cache key ignores the seed")
	}
}

// TestSignatureCacheConcurrentStress hammers one cache from many
// goroutines at width > 1 (meaningful under -race) and checks every
// result matches the uncached reference.
func TestSignatureCacheConcurrentStress(t *testing.T) {
	h, err := NewMinHasher(32, 11)
	if err != nil {
		t.Fatal(err)
	}
	keysets := testKeysets(rand.New(rand.NewSource(3)), 30, 30)
	want := make([][]uint64, len(keysets))
	for i, ks := range keysets {
		want[i] = h.Signature(ks)
	}
	cache := NewSignatureCache(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				got := cache.SignatureBatch(h, keysets, 4)
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Errorf("set %d slot %d: %d != %d", i, j, got[i][j], want[i][j])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCrossSiteMatrixWidthIndependent checks the pooled probe/score
// matrix is identical at width 1 and width 8, and symmetric-diagonal
// sane, exercising the concurrent read path over shared cubes.
func TestCrossSiteMatrixWidthIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	schema := olap.MustSchema("a", "b")
	cubes := make([]*olap.Cube, 4)
	for s := range cubes {
		c := olap.NewCube(schema)
		for r := 0; r < 300; r++ {
			err := c.Insert(olap.Row{
				Coords:  []string{fmt.Sprintf("a%d", rng.Intn(6)), fmt.Sprintf("b%d", rng.Intn(6))},
				Measure: rng.Float64(),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		cubes[s] = c
	}
	qt := olap.QueryTypeFor([]string{"a", "b"})

	run := func(width int) [][]float64 {
		t.Helper()
		prev := parallel.SetDefaultWidth(width)
		defer parallel.SetDefaultWidth(prev)
		m, err := CrossSiteMatrix("ds", qt, cubes, 5)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := run(1)
	m8 := run(8)
	for i := range m1 {
		for j := range m1[i] {
			if m1[i][j] != m8[i][j] {
				t.Fatalf("matrix[%d][%d] differs across widths: %v vs %v", i, j, m1[i][j], m8[i][j])
			}
		}
	}
}
