package similarity

import (
	"fmt"
	"sort"
	"strings"
)

// VSM is a vector space model (§4.1 cites Salton et al.): it maps
// token streams to term-frequency vectors over a fixed vocabulary so
// image-like or text data can be compared with vector distance functions
// and hashed with LSH.
type VSM struct {
	vocab map[string]int
	terms []string
}

// BuildVSM constructs the model from a corpus of documents, keeping the
// maxTerms most frequent terms (all terms if maxTerms <= 0). Term order is
// deterministic: descending corpus frequency, ties broken lexically.
func BuildVSM(corpus [][]string, maxTerms int) (*VSM, error) {
	freq := map[string]int{}
	for _, doc := range corpus {
		for _, tok := range doc {
			if tok == "" {
				continue
			}
			freq[tok]++
		}
	}
	if len(freq) == 0 {
		return nil, fmt.Errorf("similarity: vsm corpus has no terms")
	}
	terms := make([]string, 0, len(freq))
	for t := range freq {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if freq[terms[i]] != freq[terms[j]] {
			return freq[terms[i]] > freq[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if maxTerms > 0 && len(terms) > maxTerms {
		terms = terms[:maxTerms]
	}
	v := &VSM{vocab: make(map[string]int, len(terms)), terms: terms}
	for i, t := range terms {
		v.vocab[t] = i
	}
	return v, nil
}

// Dim returns the vector dimensionality (vocabulary size).
func (v *VSM) Dim() int { return len(v.terms) }

// Terms returns the vocabulary in vector order. Do not mutate.
func (v *VSM) Terms() []string { return v.terms }

// Vector maps a document to its term-frequency vector. Terms outside the
// vocabulary are dropped.
func (v *VSM) Vector(doc []string) []float64 {
	out := make([]float64, len(v.terms))
	for _, tok := range doc {
		if i, ok := v.vocab[tok]; ok {
			out[i]++
		}
	}
	return out
}

// Tokenize splits free text into lowercase word tokens on any
// non-alphanumeric boundary — a minimal analyzer adequate for log lines.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
}
