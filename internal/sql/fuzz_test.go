package sql

import "testing"

// FuzzParse drives arbitrary byte soup through the lexer and parser. The
// contract under fuzzing is narrow but absolute: Parse returns a
// *Statement or an error — it never panics, hangs, or returns both nil
// values — and parsing is deterministic for a given input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT dim0, COUNT(*) FROM ds GROUP BY dim0",
		"SELECT dim0, SUM(measure) FROM ds WHERE dim1 = 'x' GROUP BY dim0",
		"SELECT jobclass, COUNT(*) FROM facebook-000 GROUP BY jobclass",
		"select a , b from t where a != 'b' and b = 'c' group by a, b",
		"SELECT * FROM",
		"SELECT COUNT(* FROM t",
		"FROM t SELECT x",
		"SELECT a FROM t GROUP BY",
		"SELECT a FROM t WHERE = 'v' GROUP BY a",
		"\x00\xff SELECT \xf0\x28\x8c\x28",
		"SELECT a FROM t WHERE a = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		stmt2, err2 := Parse(input)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("Parse(%q) nondeterministic: err=%v then err=%v", input, err, err2)
		}
		if stmt != nil && stmt2 != nil && summarize(stmt) != summarize(stmt2) {
			t.Fatalf("Parse(%q) nondeterministic statements: %q vs %q",
				input, summarize(stmt), summarize(stmt2))
		}
	})
}
