// Package sql implements the small SQL subset Bohr accepts through its
// uniform query interface (§7: "it can leverage Spark SQL to parse SQL
// queries"). Supported shape:
//
//	SELECT <item, ...> FROM <dataset>
//	       [WHERE <dim> <op> <value> [AND ...]]
//	       [GROUP BY <dim, ...>]
//
// where items are dimension names or aggregates — SUM(measure),
// COUNT(*), MAX(measure), MIN(measure) — and ops are =, !=, <, <=, >, >=.
// Statements compile to engine queries (projection map + combine) plus a
// row predicate, so parsed SQL runs on the same substrate as the built-in
// workloads.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexed tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // = != < <= > >=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return ","
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokStar:
		return "*"
	case tokOp:
		return "operator"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Keywords stay tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sql: unexpected %q at offset %d", c, i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case c == '\'':
			j := strings.IndexByte(input[i+1:], '\'')
			if j < 0 {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : i+1+j], i})
			i += j + 2
		case unicode.IsDigit(c) || c == '-' || c == '.':
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '-') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sql: unexpected %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
