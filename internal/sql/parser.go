package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// AggFunc is an aggregate function name.
type AggFunc string

// Supported aggregates.
const (
	AggNone  AggFunc = ""
	AggSum   AggFunc = "SUM"
	AggCount AggFunc = "COUNT"
	AggMax   AggFunc = "MAX"
	AggMin   AggFunc = "MIN"
)

// SelectItem is one projected column: a plain dimension or an aggregate
// over the measure ("measure" or "*" for COUNT).
type SelectItem struct {
	Agg    AggFunc
	Column string // dimension name; "*" only for COUNT(*)
}

// Condition is one WHERE conjunct: <dim> <op> <value>.
type Condition struct {
	Column string
	Op     string // = != < <= > >=
	Value  string
	// Numeric reports whether Value lexed as a number, in which case
	// comparisons are numeric where possible.
	Numeric bool
}

// Statement is a parsed SELECT.
type Statement struct {
	Items   []SelectItem
	Dataset string
	Where   []Condition
	GroupBy []string
	// OrderBy is "key" to sort by group key or "value" to sort by the
	// aggregated measure; empty means engine order (key-sorted).
	OrderBy string
	Desc    bool
	// Limit bounds the result rows; 0 means unlimited.
	Limit int
}

// parser walks a token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q at offset %d", kw, p.peek().text, p.peek().pos)
	}
	p.next()
	return nil
}

// Parse parses one SELECT statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt := &Statement{}

	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	ds := p.next()
	if ds.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected dataset name, got %q at offset %d", ds.text, ds.pos)
	}
	stmt.Dataset = ds.text

	if p.isKeyword("WHERE") {
		p.next()
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.isKeyword("AND") {
				break
			}
			p.next()
		}
	}

	if p.isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col := p.next()
			if col.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column in GROUP BY, got %q at offset %d", col.text, col.pos)
			}
			stmt.GroupBy = append(stmt.GroupBy, col.text)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}

	if p.isKeyword("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col := p.next()
		if col.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected key|value in ORDER BY, got %q at offset %d", col.text, col.pos)
		}
		switch strings.ToLower(col.text) {
		case "key", "value":
			stmt.OrderBy = strings.ToLower(col.text)
		default:
			return nil, fmt.Errorf("sql: ORDER BY supports key or value, got %q", col.text)
		}
		if p.isKeyword("DESC") {
			stmt.Desc = true
			p.next()
		} else if p.isKeyword("ASC") {
			p.next()
		}
	}

	if p.isKeyword("LIMIT") {
		p.next()
		num := p.next()
		if num.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, got %q at offset %d", num.text, num.pos)
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", num.text)
		}
		stmt.Limit = n
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input %q at offset %d", t.text, t.pos)
	}
	if err := stmt.validate(); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.next()
	if t.kind != tokIdent {
		return SelectItem{}, fmt.Errorf("sql: expected select item, got %q at offset %d", t.text, t.pos)
	}
	upper := strings.ToUpper(t.text)
	switch AggFunc(upper) {
	case AggSum, AggCount, AggMax, AggMin:
		if p.peek().kind == tokLParen {
			p.next()
			arg := p.next()
			var col string
			switch {
			case arg.kind == tokStar:
				col = "*"
			case arg.kind == tokIdent:
				col = arg.text
			default:
				return SelectItem{}, fmt.Errorf("sql: bad aggregate argument %q at offset %d", arg.text, arg.pos)
			}
			if cp := p.next(); cp.kind != tokRParen {
				return SelectItem{}, fmt.Errorf("sql: expected ), got %q at offset %d", cp.text, cp.pos)
			}
			return SelectItem{Agg: AggFunc(upper), Column: col}, nil
		}
	}
	return SelectItem{Column: t.text}, nil
}

func (p *parser) parseCondition() (Condition, error) {
	col := p.next()
	if col.kind != tokIdent {
		return Condition{}, fmt.Errorf("sql: expected column in WHERE, got %q at offset %d", col.text, col.pos)
	}
	op := p.next()
	if op.kind != tokOp {
		return Condition{}, fmt.Errorf("sql: expected operator, got %q at offset %d", op.text, op.pos)
	}
	val := p.next()
	switch val.kind {
	case tokString:
		return Condition{Column: col.text, Op: op.text, Value: val.text}, nil
	case tokNumber:
		return Condition{Column: col.text, Op: op.text, Value: val.text, Numeric: true}, nil
	case tokIdent:
		return Condition{Column: col.text, Op: op.text, Value: val.text}, nil
	default:
		return Condition{}, fmt.Errorf("sql: expected value, got %q at offset %d", val.text, val.pos)
	}
}

// validate enforces semantic rules that don't need a schema.
func (s *Statement) validate() error {
	hasAgg := false
	var plain []string
	for _, it := range s.Items {
		if it.Agg != AggNone {
			hasAgg = true
			if it.Column == "*" && it.Agg != AggCount {
				return fmt.Errorf("sql: %s(*) is not allowed; only COUNT(*)", it.Agg)
			}
		} else {
			plain = append(plain, it.Column)
		}
	}
	if hasAgg && len(s.GroupBy) == 0 && len(plain) > 0 {
		return fmt.Errorf("sql: plain columns %v mixed with aggregates need GROUP BY", plain)
	}
	if len(s.GroupBy) > 0 {
		grouped := map[string]bool{}
		for _, g := range s.GroupBy {
			grouped[g] = true
		}
		for _, col := range plain {
			if !grouped[col] {
				return fmt.Errorf("sql: column %q must appear in GROUP BY", col)
			}
		}
	}
	return nil
}
