package sql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/workload"
)

// Plan is a compiled statement: the engine query to run plus the attribute
// set it accesses (its query type, which drives dimension cubes and
// probes).
type Plan struct {
	Statement *Statement
	Query     engine.Query
	// Dims is the attribute set the query combines on (GROUP BY columns,
	// or the plain projected columns for non-aggregating selects).
	Dims []string
}

// Compile turns a parsed statement into an engine query against a dataset
// stored with the given schema. The engine's stored keys are the full
// coordinate tuples (workload.JoinKey), so the compiled map function
// filters on WHERE and projects to the grouping dimensions.
func Compile(stmt *Statement, schema *olap.Schema) (*Plan, error) {
	if stmt == nil {
		return nil, fmt.Errorf("sql: nil statement")
	}
	// Resolve the grouping dimensions.
	dims := stmt.GroupBy
	if len(dims) == 0 {
		for _, it := range stmt.Items {
			if it.Agg == AggNone {
				dims = append(dims, it.Column)
			}
		}
	}
	if len(dims) == 0 {
		// Pure aggregate over everything: group on a constant.
		dims = nil
	}
	for _, d := range dims {
		if !schema.Has(d) {
			return nil, fmt.Errorf("sql: unknown column %q (schema has %v)", d, schema.Dims())
		}
	}
	for _, c := range stmt.Where {
		if !schema.Has(c.Column) {
			return nil, fmt.Errorf("sql: unknown column %q in WHERE", c.Column)
		}
	}

	// Pick the combine op from the first aggregate (the engine carries a
	// single measure).
	op := engine.OpSum
	for _, it := range stmt.Items {
		switch it.Agg {
		case AggCount:
			op = engine.OpCount
		case AggMax:
			op = engine.OpMax
		case AggMin:
			op = engine.OpMin
		case AggSum:
			op = engine.OpSum
		default:
			continue
		}
		break
	}

	pred, err := compilePredicate(stmt.Where, schema)
	if err != nil {
		return nil, err
	}
	var proj func(string) string
	if len(dims) > 0 {
		proj, err = workload.Projector(schema, dims)
		if err != nil {
			return nil, err
		}
	} else {
		proj = func(string) string { return "<all>" }
	}

	q := engine.Query{
		Name:      "sql:" + summarize(stmt),
		Dataset:   stmt.Dataset,
		QueryType: string(olap.QueryTypeFor(dims)),
		Map: func(r engine.KV) []engine.KV {
			if !pred(r.Key) {
				return nil
			}
			return []engine.KV{{Key: proj(r.Key), Val: r.Val}}
		},
		Combine:    op,
		MapCost:    engine.DefaultMapCost,
		ReduceCost: engine.DefaultReduceCost,
	}
	return &Plan{Statement: stmt, Query: q, Dims: dims}, nil
}

// PostProcess applies the statement's ORDER BY and LIMIT to the engine's
// (key-sorted) reduce output.
func (p *Plan) PostProcess(out []engine.KV) []engine.KV {
	rows := append([]engine.KV(nil), out...)
	stmt := p.Statement
	switch stmt.OrderBy {
	case "value":
		sort.SliceStable(rows, func(i, j int) bool {
			if stmt.Desc {
				return rows[i].Val > rows[j].Val
			}
			return rows[i].Val < rows[j].Val
		})
	case "key":
		sort.SliceStable(rows, func(i, j int) bool {
			if stmt.Desc {
				return rows[i].Key > rows[j].Key
			}
			return rows[i].Key < rows[j].Key
		})
	}
	if stmt.Limit > 0 && len(rows) > stmt.Limit {
		rows = rows[:stmt.Limit]
	}
	return rows
}

// CompileString parses and compiles in one step.
func CompileString(query string, schema *olap.Schema) (*Plan, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Compile(stmt, schema)
}

// compilePredicate builds the row filter for the WHERE conjuncts.
func compilePredicate(conds []Condition, schema *olap.Schema) (func(string) bool, error) {
	if len(conds) == 0 {
		return func(string) bool { return true }, nil
	}
	type check struct {
		idx     int
		op      string
		value   string
		numeric bool
		numVal  float64
	}
	checks := make([]check, len(conds))
	for i, c := range conds {
		ch := check{idx: schema.Index(c.Column), op: c.Op, value: c.Value, numeric: c.Numeric}
		if c.Numeric {
			v, err := strconv.ParseFloat(c.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q: %w", c.Value, err)
			}
			ch.numVal = v
		}
		checks[i] = ch
	}
	nd := schema.NumDims()
	return func(key string) bool {
		coords := workload.SplitKey(key)
		if len(coords) != nd {
			return false
		}
		for _, ch := range checks {
			got := coords[ch.idx]
			var cmp int
			if ch.numeric {
				gv, err := strconv.ParseFloat(got, 64)
				if err != nil {
					return false
				}
				switch {
				case gv < ch.numVal:
					cmp = -1
				case gv > ch.numVal:
					cmp = 1
				}
			} else {
				cmp = strings.Compare(got, ch.value)
			}
			ok := false
			switch ch.op {
			case "=":
				ok = cmp == 0
			case "!=":
				ok = cmp != 0
			case "<":
				ok = cmp < 0
			case "<=":
				ok = cmp <= 0
			case ">":
				ok = cmp > 0
			case ">=":
				ok = cmp >= 0
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

// summarize renders a short name for the compiled query.
func summarize(stmt *Statement) string {
	var b strings.Builder
	for i, it := range stmt.Items {
		if i > 0 {
			b.WriteString(",")
		}
		if it.Agg != AggNone {
			fmt.Fprintf(&b, "%s(%s)", it.Agg, it.Column)
		} else {
			b.WriteString(it.Column)
		}
	}
	fmt.Fprintf(&b, "@%s", stmt.Dataset)
	return b.String()
}
