package sql

import (
	"context"
	"math"
	"strings"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, SUM(m) FROM ds WHERE x = 'v' AND y >= 3.5")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{}
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokIdent, tokIdent, tokComma, tokIdent, tokLParen, tokIdent, tokRParen,
		tokIdent, tokIdent, tokIdent, tokIdent, tokOp, tokString, tokIdent,
		tokIdent, tokOp, tokNumber, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"a ! b", "'unterminated", "a § b"} {
		if _, err := lex(bad); err == nil {
			t.Fatalf("lex(%q) should error", bad)
		}
	}
}

func TestLexTokenKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokOp; k++ {
		if k.String() == "?" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}

func TestParseSimple(t *testing.T) {
	stmt, err := Parse("SELECT url, SUM(measure) FROM logs GROUP BY url")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Dataset != "logs" {
		t.Fatalf("dataset = %q", stmt.Dataset)
	}
	if len(stmt.Items) != 2 || stmt.Items[0].Column != "url" || stmt.Items[1].Agg != AggSum {
		t.Fatalf("items = %+v", stmt.Items)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0] != "url" {
		t.Fatalf("group by = %v", stmt.GroupBy)
	}
}

func TestParseWhere(t *testing.T) {
	stmt, err := Parse("SELECT COUNT(*) FROM t WHERE region = 'US' AND hour >= 12")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Where) != 2 {
		t.Fatalf("where = %+v", stmt.Where)
	}
	if stmt.Where[0].Op != "=" || stmt.Where[0].Value != "US" || stmt.Where[0].Numeric {
		t.Fatalf("cond 0 = %+v", stmt.Where[0])
	}
	if stmt.Where[1].Op != ">=" || !stmt.Where[1].Numeric {
		t.Fatalf("cond 1 = %+v", stmt.Where[1])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select sum(m) from t group by x"); err == nil {
		// sum(m) parses; grouping on x without selecting is fine.
	} else {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE x",
		"SELECT a FROM t WHERE x =",
		"SELECT a FROM t GROUP x",
		"SELECT a FROM t trailing",
		"SELECT SUM(*) FROM t",
		"SELECT a, SUM(m) FROM t",    // plain col with agg, no group by
		"SELECT a FROM t GROUP BY b", // a not grouped
		"SELECT SUM( FROM t",
		"SELECT MAX(a FROM t",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should error", q)
		}
	}
}

func TestParseCountStar(t *testing.T) {
	stmt, err := Parse("SELECT COUNT(*) FROM jobs GROUP BY class")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Agg != AggCount || stmt.Items[0].Column != "*" {
		t.Fatalf("items = %+v", stmt.Items)
	}
}

func mkCluster(t *testing.T) *engine.Cluster {
	t.Helper()
	top, err := wan.NewTopology([]string{"a", "b"}, []float64{50, 50}, []float64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCluster(top, 1, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileAndRun(t *testing.T) {
	schema := olap.MustSchema("url", "country", "hour")
	c := mkCluster(t)
	add := func(site int, url, country, hour string, v float64) {
		c.Data[site].Add("logs", engine.KV{
			Key: workload.JoinKey([]string{url, country, hour}), Val: v,
		})
	}
	add(0, "u1", "US", "00", 2)
	add(0, "u1", "US", "01", 3)
	add(1, "u1", "JP", "00", 5)
	add(1, "u2", "US", "02", 7)

	plan, err := CompileString("SELECT url, SUM(measure) FROM logs GROUP BY url", schema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Query.Dataset != "logs" {
		t.Fatalf("dataset = %q", plan.Query.Dataset)
	}
	res, err := c.Run(context.Background(), engine.JobConfig{Query: plan.Query})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Val
	}
	if got["u1"] != 10 || got["u2"] != 7 {
		t.Fatalf("output = %v", got)
	}
}

func TestCompileWhereFilters(t *testing.T) {
	schema := olap.MustSchema("url", "country", "hour")
	c := mkCluster(t)
	rows := []struct {
		url, cty, hr string
		v            float64
	}{
		{"u1", "US", "00", 1},
		{"u1", "JP", "00", 2},
		{"u2", "US", "05", 4},
	}
	for _, r := range rows {
		c.Data[0].Add("logs", engine.KV{Key: workload.JoinKey([]string{r.url, r.cty, r.hr}), Val: r.v})
	}
	plan, err := CompileString("SELECT country, SUM(measure) FROM logs WHERE country = 'US' GROUP BY country", schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), engine.JobConfig{Query: plan.Query})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Val != 5 {
		t.Fatalf("filtered output = %+v", res.Output)
	}
}

func TestCompileNumericComparison(t *testing.T) {
	schema := olap.MustSchema("url", "score")
	c := mkCluster(t)
	for i, score := range []string{"1", "5", "10", "30"} {
		c.Data[0].Add("logs", engine.KV{
			Key: workload.JoinKey([]string{"u", score}), Val: float64(i)},
		)
	}
	// Numeric: 5 < 10 < 30 even though "30" < "5" lexically.
	plan, err := CompileString("SELECT COUNT(*) FROM logs WHERE score >= 10", schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), engine.JobConfig{Query: plan.Query})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Val != 2 {
		t.Fatalf("numeric filter output = %+v", res.Output)
	}
	if res.Output[0].Key != "<all>" {
		t.Fatalf("ungrouped aggregate key = %q", res.Output[0].Key)
	}
}

func TestCompileAggregateOps(t *testing.T) {
	schema := olap.MustSchema("k")
	c := mkCluster(t)
	for _, v := range []float64{3, 9, 5} {
		c.Data[0].Add("d", engine.KV{Key: "k1", Val: v})
	}
	cases := []struct {
		q    string
		want float64
	}{
		{"SELECT MAX(measure) FROM d GROUP BY k", 9},
		{"SELECT MIN(measure) FROM d GROUP BY k", 3},
		{"SELECT SUM(measure) FROM d GROUP BY k", 17},
		{"SELECT COUNT(*) FROM d GROUP BY k", 3},
	}
	for _, tc := range cases {
		plan, err := CompileString(tc.q, schema)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		res, err := c.Run(context.Background(), engine.JobConfig{Query: plan.Query})
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if math.Abs(res.Output[0].Val-tc.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tc.q, res.Output[0].Val, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	schema := olap.MustSchema("a", "b")
	bad := []string{
		"SELECT zzz FROM t GROUP BY zzz",
		"SELECT SUM(measure) FROM t WHERE nope = 'x'",
	}
	for _, q := range bad {
		if _, err := CompileString(q, schema); err == nil {
			t.Errorf("CompileString(%q) should error", q)
		}
	}
	if _, err := Compile(nil, schema); err == nil {
		t.Error("nil statement should error")
	}
	if _, err := CompileString("not sql at all", schema); err == nil {
		t.Error("garbage should error")
	}
}

func TestCompileQueryTypeMatchesDims(t *testing.T) {
	schema := olap.MustSchema("a", "b", "c")
	plan, err := CompileString("SELECT b, a, SUM(measure) FROM t GROUP BY b, a", schema)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Query.QueryType != string(olap.QueryTypeFor([]string{"a", "b"})) {
		t.Fatalf("query type = %q", plan.Query.QueryType)
	}
	if !strings.HasPrefix(plan.Query.Name, "sql:") {
		t.Fatalf("name = %q", plan.Query.Name)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	stmt, err := Parse("SELECT url, SUM(measure) FROM logs GROUP BY url ORDER BY value DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.OrderBy != "value" || !stmt.Desc || stmt.Limit != 5 {
		t.Fatalf("order/limit = %q/%v/%d", stmt.OrderBy, stmt.Desc, stmt.Limit)
	}
	stmt, err = Parse("SELECT url FROM logs ORDER BY key ASC")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.OrderBy != "key" || stmt.Desc {
		t.Fatalf("order = %q/%v", stmt.OrderBy, stmt.Desc)
	}
	bad := []string{
		"SELECT url FROM logs ORDER url",
		"SELECT url FROM logs ORDER BY bogus",
		"SELECT url FROM logs LIMIT x",
		"SELECT url FROM logs LIMIT -3",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should error", q)
		}
	}
}

func TestPostProcess(t *testing.T) {
	schema := olap.MustSchema("k")
	plan, err := CompileString("SELECT k, SUM(measure) FROM d GROUP BY k ORDER BY value DESC LIMIT 2", schema)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.PostProcess([]engine.KV{{Key: "a", Val: 3}, {Key: "b", Val: 9}, {Key: "c", Val: 5}})
	if len(out) != 2 || out[0].Key != "b" || out[1].Key != "c" {
		t.Fatalf("post-processed = %+v", out)
	}
	// Key descending.
	plan2, _ := CompileString("SELECT k, SUM(measure) FROM d GROUP BY k ORDER BY key DESC", schema)
	out = plan2.PostProcess([]engine.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}})
	if out[0].Key != "b" {
		t.Fatalf("key desc = %+v", out)
	}
	// No order/limit: pass-through copy.
	plan3, _ := CompileString("SELECT k, SUM(measure) FROM d GROUP BY k", schema)
	in := []engine.KV{{Key: "z", Val: 1}, {Key: "a", Val: 2}}
	out = plan3.PostProcess(in)
	if len(out) != 2 || out[0].Key != "z" {
		t.Fatalf("pass-through = %+v", out)
	}
	out[0].Key = "mutated"
	if in[0].Key != "z" {
		t.Fatal("PostProcess must not alias the input")
	}
}
