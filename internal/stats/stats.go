// Package stats provides small numeric helpers shared across the Bohr
// reproduction: summary statistics, histograms, and deterministic seeded
// random sources.
//
// Every stochastic component in the repository draws from an explicit
// *rand.Rand created through this package so experiment runs are
// bit-reproducible.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic random source for the given seed.
// Callers must never share one source across goroutines; derive one per
// goroutine with Split.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a child seed from a parent seed and a stream index so
// parallel components get independent but reproducible streams.
func Split(seed int64, stream int64) int64 {
	// SplitMix64-style mixing keeps child streams decorrelated even for
	// adjacent stream indices.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It copies xs and leaves the input
// unmodified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the usual five-number-ish summary of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
	}
}

// String renders the summary compactly for log lines and harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Zipf draws n samples from a Zipf distribution over [0, k) with skew s>1
// behaviourally similar to real analytics key popularity. The returned
// values are element indices.
func Zipf(rng *rand.Rand, s float64, k uint64, n int) []uint64 {
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(rng, s, 1, k-1)
	out := make([]uint64, n)
	for i := range out {
		out[i] = z.Uint64()
	}
	return out
}

// WeightedChoice picks an index in weights proportionally to its weight.
// All weights must be non-negative; a zero total picks uniformly.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Histogram is a fixed-bucket histogram over [lo, hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	under   int
	over    int
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.under + h.over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// OutOfRange returns counts of observations below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }
