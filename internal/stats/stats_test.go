package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Sum(xs); got != 11 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be ±Inf")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if StdDev(nil) != 0 {
		t.Fatal("StdDev(nil) should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMedianInterpolates(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.P50 != 2 {
		t.Fatalf("bad summary: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestSplitDeterministicAndDistinct(t *testing.T) {
	a := Split(42, 1)
	b := Split(42, 1)
	c := Split(42, 2)
	if a != b {
		t.Fatal("Split not deterministic")
	}
	if a == c {
		t.Fatal("adjacent streams should differ")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	r1, r2 := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	rng := NewRand(1)
	xs := Zipf(rng, 1.5, 1000, 10000)
	counts := map[uint64]int{}
	for _, x := range xs {
		if x >= 1000 {
			t.Fatalf("out of range: %d", x)
		}
		counts[x]++
	}
	// Zipf should be heavily skewed toward small indices.
	if counts[0] < counts[500]*2 {
		t.Fatalf("expected skew: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(3)
	w := []float64{0, 0, 1}
	for i := 0; i < 50; i++ {
		if got := WeightedChoice(rng, w); got != 2 {
			t.Fatalf("WeightedChoice picked %d with zero weight", got)
		}
	}
	// Zero total falls back to uniform and must stay in range.
	for i := 0; i < 50; i++ {
		if got := WeightedChoice(rng, []float64{0, 0}); got < 0 || got > 1 {
			t.Fatalf("uniform fallback out of range: %d", got)
		}
	}
}

func TestWeightedChoiceProportions(t *testing.T) {
	rng := NewRand(9)
	w := []float64{1, 3}
	n1 := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if WeightedChoice(rng, w) == 1 {
			n1++
		}
	}
	frac := float64(n1) / trials
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 option chosen %.3f of the time, want ~0.75", frac)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under=%d over=%d", under, over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Fatalf("bucket4 = %d, want 1", h.Buckets[4])
	}
}

func TestHistogramZeroBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 0)
	h.Add(0.5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram should still count")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101)
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
