package wan

import (
	"fmt"
	"math/rand"
	"sync"
)

// BandwidthEstimator tracks the available bandwidth of every site the way
// the Bohr prototype does (§7): it periodically observes noisy samples of
// each link and smooths them, assuming bandwidth is relatively stable at
// the granularity of minutes. The placement planner consumes the smoothed
// values rather than the instantaneous truth.
type BandwidthEstimator struct {
	mu    sync.Mutex
	alpha float64 // EWMA smoothing factor in (0, 1]
	up    []float64
	down  []float64
	seen  []bool
	// round counts probing rounds (BeginRound calls); lastRound records
	// the round of each site's latest sample so the planner can spot
	// sites that stopped reporting.
	round     int
	lastRound []int
}

// NewBandwidthEstimator creates an estimator for n sites with EWMA factor
// alpha. alpha=1 means "trust only the latest sample"; small alpha smooths
// aggressively.
func NewBandwidthEstimator(n int, alpha float64) (*BandwidthEstimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wan: estimator needs at least one site, got %d", n)
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("wan: EWMA alpha must be in (0,1], got %v", alpha)
	}
	e := &BandwidthEstimator{
		alpha:     alpha,
		up:        make([]float64, n),
		down:      make([]float64, n),
		seen:      make([]bool, n),
		lastRound: make([]int, n),
	}
	for i := range e.lastRound {
		e.lastRound[i] = -1
	}
	return e, nil
}

// BeginRound marks the start of one probing round. Observations that
// follow are stamped with this round for staleness accounting.
func (e *BandwidthEstimator) BeginRound() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.round++
}

// Observe folds one bandwidth measurement for a site into the estimate.
func (e *BandwidthEstimator) Observe(site SiteID, upMBps, downMBps float64) error {
	if int(site) < 0 || int(site) >= len(e.up) {
		return fmt.Errorf("wan: observe: site %d out of range [0,%d)", site, len(e.up))
	}
	if upMBps <= 0 || downMBps <= 0 {
		return fmt.Errorf("wan: observe: non-positive sample for site %d", site)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastRound[site] = e.round
	if !e.seen[site] {
		e.up[site], e.down[site] = upMBps, downMBps
		e.seen[site] = true
		return nil
	}
	e.up[site] = e.alpha*upMBps + (1-e.alpha)*e.up[site]
	e.down[site] = e.alpha*downMBps + (1-e.alpha)*e.down[site]
	return nil
}

// Staleness returns how many rounds have passed since the site's last
// sample (0 = observed this round). ok is false if the site has never
// been observed or is out of range.
func (e *BandwidthEstimator) Staleness(site SiteID) (rounds int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(site) < 0 || int(site) >= len(e.lastRound) || e.lastRound[site] < 0 {
		return 0, false
	}
	return e.round - e.lastRound[site], true
}

// StaleSites lists sites whose latest sample is older than maxAge
// rounds — including sites never observed at all. These are the sites a
// degraded-mode planner should treat as unreachable.
func (e *BandwidthEstimator) StaleSites(maxAge int) []SiteID {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []SiteID
	for i := range e.lastRound {
		if e.lastRound[i] < 0 || e.round-e.lastRound[i] > maxAge {
			out = append(out, SiteID(i))
		}
	}
	return out
}

// Estimate returns the current smoothed estimate for a site. ok is false
// if the site has never been observed.
func (e *BandwidthEstimator) Estimate(site SiteID) (upMBps, downMBps float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if int(site) < 0 || int(site) >= len(e.up) || !e.seen[site] {
		return 0, 0, false
	}
	return e.up[site], e.down[site], true
}

// Snapshot builds a Topology from the current estimates, falling back to
// the provided truth for never-observed sites. This is what the planner
// hands to the LP.
func (e *BandwidthEstimator) Snapshot(truth *Topology) *Topology {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := &Topology{Sites: make([]Site, truth.N())}
	for i, s := range truth.Sites {
		out.Sites[i] = s
		if i < len(e.seen) && e.seen[i] {
			out.Sites[i].UpMBps = e.up[i]
			out.Sites[i].DownMBps = e.down[i]
		}
	}
	return out
}

// NoisyProbe simulates one round of bandwidth probing against the true
// topology: each site's capacity is observed with multiplicative noise of
// relative magnitude jitter (e.g. 0.1 for ±10%). It feeds every sample into
// the estimator.
func (e *BandwidthEstimator) NoisyProbe(truth *Topology, jitter float64, rng *rand.Rand) {
	e.BeginRound()
	for _, s := range truth.Sites {
		f := func() float64 { return 1 + jitter*(2*rng.Float64()-1) }
		up := s.UpMBps * f()
		down := s.DownMBps * f()
		if up <= 0 {
			up = s.UpMBps * 0.01
		}
		if down <= 0 {
			down = s.DownMBps * 0.01
		}
		// Errors impossible here: capacities are positive and site IDs valid.
		_ = e.Observe(s.ID, up, down)
	}
}
