package wan

import (
	"fmt"
	"math"
)

// LinkFaults is the fluid model's view of a fault schedule: a
// piecewise-constant multiplier on each site's uplink and downlink
// capacity over modeled time, with NextBoundary exposing the instants
// where any multiplier changes. faults.Schedule satisfies it; wan
// deliberately does not import the faults package so the dependency
// points one way.
type LinkFaults interface {
	UpFactor(site int, t float64) float64
	DownFactor(site int, t float64) float64
	NextBoundary(after float64) (float64, bool)
}

// EstimateFaults is Estimate under a fault schedule: each site drains
// its aggregate upload and download bytes through a capacity that is
// scaled by the schedule's piecewise-constant factors, starting at
// modeled time start. The returned makespan is the duration (seconds
// after start) until the last site finishes. With a nil schedule it
// equals Estimate.
func (t *Topology) EstimateFaults(transfers []Transfer, f LinkFaults, start float64) float64 {
	if f == nil {
		return t.Estimate(transfers)
	}
	upB := make([]float64, t.N())
	downB := make([]float64, t.N())
	for _, tr := range transfers {
		if tr.Src == tr.Dst || tr.MB <= 0 {
			continue
		}
		upB[tr.Src] += tr.MB
		downB[tr.Dst] += tr.MB
	}
	var makespan float64
	for i, s := range t.Sites {
		up := drainTime(upB[i], s.UpMBps, func(tm float64) float64 { return f.UpFactor(i, tm) }, f, start)
		down := drainTime(downB[i], s.DownMBps, func(tm float64) float64 { return f.DownFactor(i, tm) }, f, start)
		if up > makespan {
			makespan = up
		}
		if down > makespan {
			makespan = down
		}
	}
	return makespan
}

// drainTime integrates mb megabytes through a link whose rate is
// cap·factor(t), piecewise-constant between fault boundaries, starting
// at modeled time start. Returns the drain duration.
func drainTime(mb, cap float64, factor func(float64) float64, f LinkFaults, start float64) float64 {
	if mb <= 0 {
		return 0
	}
	// Elapsed accumulates separately from the absolute clock so that a
	// schedule with no active windows yields bit-identical arithmetic to
	// the fault-free mb/cap division.
	var elapsed float64
	now := start
	for {
		rate := cap * factor(now)
		b, ok := f.NextBoundary(now)
		if !ok {
			// No boundaries remain: the factor is constant forever. Fault
			// windows are finite, so a zero rate here means a malformed
			// schedule rather than a transient.
			if rate <= 0 {
				panic(fmt.Sprintf("wan: link permanently dead at t=%.3f with %.3f MB left", now, mb))
			}
			return elapsed + mb/rate
		}
		if rate > 0 {
			if dt := mb / rate; dt <= b-now {
				return elapsed + dt
			}
			mb -= rate * (b - now)
		}
		elapsed += b - now
		now = b
	}
}

// SimulateFaults is Simulate under a fault schedule: the max-min fair
// fluid model recomputes rates at every flow completion AND every fault
// boundary, with per-site capacities scaled by the schedule's factors
// at the current modeled time. Flow Finish times and the makespan are
// reported relative to start. With a nil schedule it equals Simulate.
func (t *Topology) SimulateFaults(transfers []Transfer, f LinkFaults, start float64) SimResult {
	if f == nil {
		return t.Simulate(transfers)
	}
	flows := make([]*flow, 0, len(transfers))
	results := make([]FlowResult, len(transfers))
	for i, tr := range transfers {
		results[i] = FlowResult{Transfer: tr}
		if tr.Src == tr.Dst || tr.MB <= 0 {
			continue
		}
		flows = append(flows, &flow{idx: i, src: tr.Src, dst: tr.Dst, remaining: tr.MB})
	}

	n := t.N()
	upCap := make([]float64, n)
	downCap := make([]float64, n)
	now := start
	active := len(flows)
	for active > 0 {
		for i, s := range t.Sites {
			upCap[i] = s.UpMBps * f.UpFactor(i, now)
			downCap[i] = s.DownMBps * f.DownFactor(i, now)
		}
		fillRatesCaps(flows, upCap, downCap)
		next := math.Inf(1)
		for _, fl := range flows {
			if fl.done || fl.rate <= 0 {
				continue
			}
			if dt := fl.remaining / fl.rate; dt < next {
				next = dt
			}
		}
		b, haveB := f.NextBoundary(now)
		if math.IsInf(next, 1) {
			// Every remaining flow is blacked out; jump to the next fault
			// boundary and retry. No boundary left means a permanent outage.
			if !haveB {
				panic(fmt.Sprintf("wan: faulty fluid simulation stalled at t=%.3f with %d active flows", now, active))
			}
			now = b
			continue
		}
		step := next
		if haveB && b-now < step {
			step = b - now
		}
		for _, fl := range flows {
			if fl.done {
				continue
			}
			fl.remaining -= fl.rate * step
			if fl.remaining <= 1e-9 {
				fl.remaining = 0
				fl.done = true
				active--
				results[fl.idx].Finish = now + step - start
			}
		}
		now += step
	}
	return SimResult{Flows: results, Makespan: now - start}
}
