package wan

import (
	"math"
	"testing"

	"bohr/internal/stats"
)

// stubFaults is a hand-rolled LinkFaults for tests: one fault window
// per site with a capacity factor. (The real faults.Schedule satisfies
// the same interface but lives upstream of wan in the import DAG.)
type stubFaults struct {
	site       int
	start, end float64
	factor     float64
}

func (s stubFaults) factorAt(site int, t float64) float64 {
	if site == s.site && t >= s.start && t < s.end {
		return s.factor
	}
	return 1
}
func (s stubFaults) UpFactor(site int, t float64) float64   { return s.factorAt(site, t) }
func (s stubFaults) DownFactor(site int, t float64) float64 { return s.factorAt(site, t) }
func (s stubFaults) NextBoundary(after float64) (float64, bool) {
	if after < s.start {
		return s.start, true
	}
	if after < s.end {
		return s.end, true
	}
	return 0, false
}

func twoEqualSites(t *testing.T) *Topology {
	t.Helper()
	top, err := NewTopology([]string{"a", "b"}, []float64{10, 10}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestEstimateFaultsHandComputed(t *testing.T) {
	top := twoEqualSites(t)
	tr := []Transfer{{Src: 0, Dst: 1, MB: 100}}
	// Clean: 100 MB / 10 MBps = 10 s, both with nil faults and with a
	// schedule whose window misses the transfer.
	if got := top.EstimateFaults(tr, nil, 0); got != 10 {
		t.Fatalf("nil faults: %v, want 10", got)
	}
	miss := stubFaults{site: 0, start: 100, end: 200, factor: 0.5}
	if got := top.EstimateFaults(tr, miss, 0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("missed window: %v, want 10", got)
	}
	// Uplink at half speed for t ∈ [0, 10): drains 50 MB in the window,
	// the remaining 50 MB at full speed → 10 + 5 = 15 s.
	half := stubFaults{site: 0, start: 0, end: 10, factor: 0.5}
	if got := top.EstimateFaults(tr, half, 0); math.Abs(got-15) > 1e-9 {
		t.Fatalf("half-speed window: %v, want 15", got)
	}
	// Blackout for t ∈ [2, 7): 2 s of progress, 5 s stalled, 8 s more →
	// finishes at 15, i.e. 15 s after start 0.
	dark := stubFaults{site: 0, start: 2, end: 7, factor: 0}
	if got := top.EstimateFaults(tr, dark, 0); math.Abs(got-15) > 1e-9 {
		t.Fatalf("blackout window: %v, want 15", got)
	}
	// Same blackout but the transfer starts at t=7: no overlap, 10 s.
	if got := top.EstimateFaults(tr, dark, 7); math.Abs(got-10) > 1e-9 {
		t.Fatalf("start after blackout: %v, want 10", got)
	}
}

func TestSimulateFaultsHandComputed(t *testing.T) {
	top := twoEqualSites(t)
	tr := []Transfer{{Src: 0, Dst: 1, MB: 100}}
	dark := stubFaults{site: 0, start: 2, end: 7, factor: 0}
	res := top.SimulateFaults(tr, dark, 0)
	if math.Abs(res.Makespan-15) > 1e-9 {
		t.Fatalf("blackout makespan %v, want 15", res.Makespan)
	}
	if math.Abs(res.Flows[0].Finish-15) > 1e-9 {
		t.Fatalf("flow finish %v, want 15", res.Flows[0].Finish)
	}
	// Nil faults must agree with Simulate exactly.
	clean := top.Simulate(tr)
	if got := top.SimulateFaults(tr, nil, 0); got.Makespan != clean.Makespan {
		t.Fatalf("nil faults diverged: %v vs %v", got.Makespan, clean.Makespan)
	}
	// Two flows sharing site 0's uplink under a half-speed window
	// [0, 12): each gets 2.5 MBps while degraded, so the 25 MB flow
	// finishes at t=10 and the 75 MB flow has 50 MB left. It then owns
	// the whole degraded uplink (5 MBps) until the fault lifts at t=12
	// (40 MB left), and drains the rest at 10 MBps → done at t=16.
	trs := []Transfer{{Src: 0, Dst: 1, MB: 25}, {Src: 0, Dst: 1, MB: 75}}
	res2 := top.SimulateFaults(trs, stubFaults{site: 0, start: 0, end: 12, factor: 0.5}, 0)
	if math.Abs(res2.Flows[0].Finish-10) > 1e-6 {
		t.Errorf("small flow finish %v, want 10", res2.Flows[0].Finish)
	}
	if math.Abs(res2.Makespan-16) > 1e-6 {
		t.Errorf("makespan %v, want 16", res2.Makespan)
	}
}

func TestEstimatorDropouts(t *testing.T) {
	top := twoEqualSites(t)
	e, err := NewBandwidthEstimator(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(1)
	// Site 1 reports in round 1 then goes silent for five rounds.
	e.BeginRound()
	if err := e.Observe(0, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(1, 10, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.BeginRound()
		if err := e.Observe(0, 8+4*rng.Float64(), 8+4*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	if age, ok := e.Staleness(0); !ok || age != 0 {
		t.Errorf("site 0 staleness = %v,%v, want 0,true", age, ok)
	}
	if age, ok := e.Staleness(1); !ok || age != 5 {
		t.Errorf("site 1 staleness = %v,%v, want 5,true", age, ok)
	}
	if _, ok := e.Staleness(7); ok {
		t.Error("out-of-range site reported ok")
	}
	stale := e.StaleSites(2)
	if len(stale) != 1 || stale[0] != 1 {
		t.Errorf("StaleSites(2) = %v, want [1]", stale)
	}
	if got := e.StaleSites(10); got != nil {
		t.Errorf("StaleSites(10) = %v, want none", got)
	}
	// The silent site keeps its last smoothed estimate; Snapshot still
	// carries it (smoothing over gaps is the §7 behavior).
	up, down, ok := e.Estimate(1)
	if !ok || up != 10 || down != 10 {
		t.Errorf("silent site estimate = %v,%v,%v", up, down, ok)
	}
	snap := e.Snapshot(top)
	if snap.Sites[1].UpMBps != 10 {
		t.Errorf("snapshot lost silent site estimate: %v", snap.Sites[1].UpMBps)
	}
	// A site that has NEVER reported falls back to truth in Snapshot and
	// shows up stale at any age.
	e2, _ := NewBandwidthEstimator(2, 0.5)
	e2.BeginRound()
	_ = e2.Observe(0, 5, 5)
	if got := e2.StaleSites(1000); len(got) != 1 || got[0] != 1 {
		t.Errorf("never-seen site not stale: %v", got)
	}
	if snap := e2.Snapshot(top); snap.Sites[1].UpMBps != 10 {
		t.Errorf("never-seen site should fall back to truth, got %v", snap.Sites[1].UpMBps)
	}
}
