package wan

import "bohr/internal/obs"

// RecordFlows accounts a transfer set's per-link WAN volume into the
// collector's metrics under the given phase ("shuffle", "move", …):
// one counter per directed site pair, "wan.<phase>.<src>-><dst>.mb",
// plus the phase aggregate "wan.<phase>.mb". Nil-safe and free when col
// is nil.
func RecordFlows(col *obs.Collector, t *Topology, phase string, flows []Transfer) {
	if col == nil {
		return
	}
	for _, tr := range flows {
		if tr.Src == tr.Dst || tr.MB <= 0 {
			continue
		}
		link := "wan." + phase + "." + t.Sites[tr.Src].Name + "->" + t.Sites[tr.Dst].Name + ".mb"
		col.Count(link, tr.MB)
		col.Count("wan."+phase+".mb", tr.MB)
	}
}
