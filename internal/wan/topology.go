// Package wan models the wide-area network substrate of the Bohr
// reproduction: a set of geo-distributed sites whose links to the Internet
// backbone are the only bottleneck (the paper's §5 assumption, validated by
// empirical measurements it cites).
//
// Two facilities are provided. Estimate computes per-site aggregate transfer
// times exactly as the placement LP models them. Simulate runs a max-min
// fair fluid simulation of concurrent transfers, which the engine uses to
// measure the shuffle stage realistically.
package wan

import "fmt"

// SiteID identifies a site (data center) within a Topology.
type SiteID int

// Site describes one data center and its access-link capacities in
// megabytes per second.
type Site struct {
	ID       SiteID
	Name     string
	UpMBps   float64 // uplink capacity to the backbone
	DownMBps float64 // downlink capacity from the backbone
}

// Topology is an ordered collection of sites. Site IDs are dense indices
// into the slice.
type Topology struct {
	Sites []Site
}

// NewTopology builds a topology from names and symmetric per-site
// capacities. len(names) must equal len(upMBps) and len(downMBps).
func NewTopology(names []string, upMBps, downMBps []float64) (*Topology, error) {
	if len(names) != len(upMBps) || len(names) != len(downMBps) {
		return nil, fmt.Errorf("wan: mismatched lengths: %d names, %d uplinks, %d downlinks",
			len(names), len(upMBps), len(downMBps))
	}
	t := &Topology{Sites: make([]Site, len(names))}
	for i, n := range names {
		if upMBps[i] <= 0 || downMBps[i] <= 0 {
			return nil, fmt.Errorf("wan: site %q has non-positive capacity", n)
		}
		t.Sites[i] = Site{ID: SiteID(i), Name: n, UpMBps: upMBps[i], DownMBps: downMBps[i]}
	}
	return t, nil
}

// N returns the number of sites.
func (t *Topology) N() int { return len(t.Sites) }

// Site returns the site with the given ID.
func (t *Topology) Site(id SiteID) Site { return t.Sites[id] }

// Uplinks returns the uplink capacities indexed by site ID.
func (t *Topology) Uplinks() []float64 {
	out := make([]float64, len(t.Sites))
	for i, s := range t.Sites {
		out[i] = s.UpMBps
	}
	return out
}

// Downlinks returns the downlink capacities indexed by site ID.
func (t *Topology) Downlinks() []float64 {
	out := make([]float64, len(t.Sites))
	for i, s := range t.Sites {
		out[i] = s.DownMBps
	}
	return out
}

// ByName returns the site with the given name.
func (t *Topology) ByName(name string) (Site, bool) {
	for _, s := range t.Sites {
		if s.Name == name {
			return s, true
		}
	}
	return Site{}, false
}

// EC2 region names used throughout the paper's evaluation (§8.1).
var EC2RegionNames = []string{
	"Singapore", "Tokyo", "Oregon", "Virginia", "Ohio",
	"Frankfurt", "Seoul", "Sydney", "London", "Ireland",
}

// EC2TenRegions reproduces the paper's measured bandwidth structure: the
// WAN bandwidth at Singapore, Tokyo and Oregon is about 2.5x larger than
// Virginia, Ohio and Frankfurt, and 5x larger than the remaining regions
// (§8.1). base is the capacity of the slowest tier in MB/s; uplink and
// downlink are symmetric as in the paper's description.
func EC2TenRegions(base float64) *Topology {
	if base <= 0 {
		base = 20
	}
	tier := map[string]float64{
		"Singapore": 5, "Tokyo": 5, "Oregon": 5,
		"Virginia": 2, "Ohio": 2, "Frankfurt": 2,
		"Seoul": 1, "Sydney": 1, "London": 1, "Ireland": 1,
	}
	up := make([]float64, len(EC2RegionNames))
	down := make([]float64, len(EC2RegionNames))
	for i, n := range EC2RegionNames {
		up[i] = base * tier[n]
		down[i] = base * tier[n]
	}
	t, err := NewTopology(EC2RegionNames, up, down)
	if err != nil {
		panic("wan: EC2TenRegions construction: " + err.Error())
	}
	return t
}

// BottleneckSite returns the site with the smallest uplink capacity per
// byte of pending data: the site that would take longest to drain load[i]
// bytes through its uplink. Prior geo-analytics work moves data out of this
// site first. load is indexed by SiteID; sites with zero load are skipped.
func (t *Topology) BottleneckSite(load []float64) SiteID {
	best := SiteID(-1)
	var worst float64 = -1
	for i, s := range t.Sites {
		if i >= len(load) || load[i] <= 0 {
			continue
		}
		drain := load[i] / s.UpMBps
		if drain > worst {
			worst = drain
			best = SiteID(i)
		}
	}
	return best
}
