package wan

import (
	"fmt"
	"math"
)

// Transfer is one WAN flow: MB megabytes moving from Src to Dst.
// (The unit is MB throughout so that MB / MBps = seconds.)
type Transfer struct {
	Src, Dst SiteID
	MB       float64
}

// Estimate computes the aggregate per-site transfer time under the
// placement model of §5: each site uploads the sum of its outgoing bytes
// through its uplink and downloads the sum of its incoming bytes through
// its downlink, independently. The returned value is the makespan — the
// maximum over all per-site upload and download times. This is exactly the
// quantity constraints (3)-(6) of the LP bound.
func (t *Topology) Estimate(transfers []Transfer) float64 {
	up, down := t.PerSiteTimes(transfers)
	var makespan float64
	for i := range up {
		if up[i] > makespan {
			makespan = up[i]
		}
		if down[i] > makespan {
			makespan = down[i]
		}
	}
	return makespan
}

// PerSiteTimes returns (uploadTime, downloadTime) per site for a transfer
// set, the per-site decomposition of Estimate.
func (t *Topology) PerSiteTimes(transfers []Transfer) (up, down []float64) {
	upB := make([]float64, t.N())
	downB := make([]float64, t.N())
	for _, tr := range transfers {
		if tr.Src == tr.Dst || tr.MB <= 0 {
			continue
		}
		upB[tr.Src] += tr.MB
		downB[tr.Dst] += tr.MB
	}
	up = make([]float64, t.N())
	down = make([]float64, t.N())
	for i, s := range t.Sites {
		up[i] = upB[i] / s.UpMBps
		down[i] = downB[i] / s.DownMBps
	}
	return up, down
}

// flow is the mutable state of one simulated transfer.
type flow struct {
	idx       int
	src, dst  SiteID
	remaining float64
	rate      float64
	frozen    bool // rate fixed during the current progressive-filling pass
	done      bool
}

// FlowResult reports the completion time of one simulated transfer.
type FlowResult struct {
	Transfer
	Finish float64 // seconds from simulation start
}

// SimResult is the outcome of a fluid simulation.
type SimResult struct {
	Flows    []FlowResult
	Makespan float64
}

// Simulate runs the transfer set to completion under max-min fair sharing
// of the per-site uplink and downlink capacities (a fluid model: rates are
// recomputed by progressive filling at every flow completion event). It
// returns per-flow completion times and the makespan.
//
// The fluid model reflects how parallel shuffle flows actually share access
// links, and is never faster than Estimate's per-link aggregate bound.
func (t *Topology) Simulate(transfers []Transfer) SimResult {
	flows := make([]*flow, 0, len(transfers))
	results := make([]FlowResult, len(transfers))
	for i, tr := range transfers {
		results[i] = FlowResult{Transfer: tr}
		if tr.Src == tr.Dst || tr.MB <= 0 {
			continue // local or empty: completes instantly
		}
		flows = append(flows, &flow{idx: i, src: tr.Src, dst: tr.Dst, remaining: tr.MB})
	}

	now := 0.0
	active := len(flows)
	for active > 0 {
		t.fillRates(flows)
		// Earliest completion among active flows.
		next := math.Inf(1)
		for _, f := range flows {
			if f.done || f.rate <= 0 {
				continue
			}
			if dt := f.remaining / f.rate; dt < next {
				next = dt
			}
		}
		if math.IsInf(next, 1) {
			panic(fmt.Sprintf("wan: fluid simulation stalled at t=%.3f with %d active flows", now, active))
		}
		now += next
		for _, f := range flows {
			if f.done {
				continue
			}
			f.remaining -= f.rate * next
			if f.remaining <= 1e-9 {
				f.remaining = 0
				f.done = true
				active--
				results[f.idx].Finish = now
			}
		}
	}
	return SimResult{Flows: results, Makespan: now}
}

// fillRates assigns max-min fair rates to active flows via progressive
// filling: repeatedly find the most contended link (smallest per-flow fair
// share), freeze its flows at that share, subtract the frozen rates from
// link capacities, and repeat until every flow is frozen.
func (t *Topology) fillRates(flows []*flow) {
	n := t.N()
	upCap := make([]float64, n)
	downCap := make([]float64, n)
	for i, s := range t.Sites {
		upCap[i] = s.UpMBps
		downCap[i] = s.DownMBps
	}
	fillRatesCaps(flows, upCap, downCap)
}

// fillRatesCaps is fillRates on explicit capacity arrays, so the faulty
// simulator can pass capacities already scaled by the active fault
// factors. Capacities are consumed (mutated) during filling. A zero
// capacity leaves its flows at rate 0.
func fillRatesCaps(flows []*flow, upCap, downCap []float64) {
	n := len(upCap)
	unfrozen := 0
	for _, f := range flows {
		f.frozen = f.done
		f.rate = 0
		if !f.done {
			unfrozen++
		}
	}
	upCnt := make([]int, n)
	downCnt := make([]int, n)
	for unfrozen > 0 {
		for i := 0; i < n; i++ {
			upCnt[i], downCnt[i] = 0, 0
		}
		for _, f := range flows {
			if f.frozen {
				continue
			}
			upCnt[f.src]++
			downCnt[f.dst]++
		}
		// Smallest fair share over all loaded links.
		share := math.Inf(1)
		for i := 0; i < n; i++ {
			if upCnt[i] > 0 {
				if s := upCap[i] / float64(upCnt[i]); s < share {
					share = s
				}
			}
			if downCnt[i] > 0 {
				if s := downCap[i] / float64(downCnt[i]); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			break
		}
		// Freeze flows crossing any link saturated at this share.
		for _, f := range flows {
			if f.frozen {
				continue
			}
			srcSat := upCap[f.src]/float64(upCnt[f.src]) <= share+1e-12
			dstSat := downCap[f.dst]/float64(downCnt[f.dst]) <= share+1e-12
			if srcSat || dstSat {
				f.rate = share
				f.frozen = true
				unfrozen--
				upCap[f.src] -= share
				downCap[f.dst] -= share
			}
		}
	}
}
