package wan

import (
	"math"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
)

func twoSites(t *testing.T) *Topology {
	t.Helper()
	top, err := NewTopology([]string{"a", "b"}, []float64{10, 20}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology([]string{"a"}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := NewTopology([]string{"a"}, []float64{0}, []float64{1}); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := NewTopology([]string{"a"}, []float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestTopologyAccessors(t *testing.T) {
	top := twoSites(t)
	if top.N() != 2 {
		t.Fatalf("N = %d", top.N())
	}
	if s := top.Site(1); s.Name != "b" || s.UpMBps != 20 {
		t.Fatalf("Site(1) = %+v", s)
	}
	if _, ok := top.ByName("a"); !ok {
		t.Fatal("ByName(a) should exist")
	}
	if _, ok := top.ByName("zzz"); ok {
		t.Fatal("ByName(zzz) should not exist")
	}
	up, down := top.Uplinks(), top.Downlinks()
	if up[0] != 10 || up[1] != 20 || down[0] != 10 || down[1] != 20 {
		t.Fatalf("uplinks %v downlinks %v", up, down)
	}
}

func TestEC2TenRegionsRatios(t *testing.T) {
	top := EC2TenRegions(20)
	if top.N() != 10 {
		t.Fatalf("want 10 regions, got %d", top.N())
	}
	sg, _ := top.ByName("Singapore")
	va, _ := top.ByName("Virginia")
	ld, _ := top.ByName("London")
	if sg.UpMBps/ld.UpMBps != 5 {
		t.Fatalf("Singapore/London ratio = %v, want 5", sg.UpMBps/ld.UpMBps)
	}
	if sg.UpMBps/va.UpMBps != 2.5 {
		t.Fatalf("Singapore/Virginia ratio = %v, want 2.5", sg.UpMBps/va.UpMBps)
	}
	// Defaults on non-positive base.
	if d := EC2TenRegions(0); d.Sites[0].UpMBps <= 0 {
		t.Fatal("default base should give positive capacity")
	}
}

func TestBottleneckSite(t *testing.T) {
	top := twoSites(t)
	// Equal load: site a (slower uplink) is the bottleneck.
	if b := top.BottleneckSite([]float64{100, 100}); b != 0 {
		t.Fatalf("bottleneck = %d, want 0", b)
	}
	// Heavier load at b outweighs its faster uplink (100/10=10 < 300/20=15).
	if b := top.BottleneckSite([]float64{100, 300}); b != 1 {
		t.Fatalf("bottleneck = %d, want 1", b)
	}
	if b := top.BottleneckSite([]float64{0, 0}); b != -1 {
		t.Fatalf("bottleneck with no load = %d, want -1", b)
	}
}

func TestEstimateSingleFlow(t *testing.T) {
	top := twoSites(t)
	// 100 MB from a (10 MBps up) to b (20 MBps down): bound by uplink, 10 s.
	got := top.Estimate([]Transfer{{Src: 0, Dst: 1, MB: 100}})
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("Estimate = %v, want 10", got)
	}
}

func TestEstimateIgnoresLocalAndEmpty(t *testing.T) {
	top := twoSites(t)
	got := top.Estimate([]Transfer{
		{Src: 0, Dst: 0, MB: 1000},
		{Src: 0, Dst: 1, MB: 0},
		{Src: 0, Dst: 1, MB: -5},
	})
	if got != 0 {
		t.Fatalf("Estimate = %v, want 0", got)
	}
}

func TestPerSiteTimes(t *testing.T) {
	top := twoSites(t)
	up, down := top.PerSiteTimes([]Transfer{
		{Src: 0, Dst: 1, MB: 50},
		{Src: 1, Dst: 0, MB: 40},
	})
	if math.Abs(up[0]-5) > 1e-9 || math.Abs(up[1]-2) > 1e-9 {
		t.Fatalf("up = %v", up)
	}
	if math.Abs(down[0]-4) > 1e-9 || math.Abs(down[1]-2.5) > 1e-9 {
		t.Fatalf("down = %v", down)
	}
}

func TestSimulateSingleFlowMatchesEstimate(t *testing.T) {
	top := twoSites(t)
	tr := []Transfer{{Src: 0, Dst: 1, MB: 100}}
	res := top.Simulate(tr)
	if math.Abs(res.Makespan-top.Estimate(tr)) > 1e-6 {
		t.Fatalf("simulate %v != estimate %v", res.Makespan, top.Estimate(tr))
	}
	if math.Abs(res.Flows[0].Finish-10) > 1e-6 {
		t.Fatalf("flow finish = %v", res.Flows[0].Finish)
	}
}

func TestSimulateFairSharing(t *testing.T) {
	top := twoSites(t)
	// Two flows share a's 10 MBps uplink; each gets 5 MBps; both need 50 MB.
	res := top.Simulate([]Transfer{
		{Src: 0, Dst: 1, MB: 50},
		{Src: 0, Dst: 1, MB: 50},
	})
	if math.Abs(res.Makespan-10) > 1e-6 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestSimulateRateReallocation(t *testing.T) {
	top := twoSites(t)
	// Flows of 25 MB and 75 MB share the 10 MBps uplink. First 25 MB flow
	// finishes at t=5 (5 MBps each); then the big flow gets the full 10
	// MBps for its remaining 50 MB: finish at 5 + 5 = 10.
	res := top.Simulate([]Transfer{
		{Src: 0, Dst: 1, MB: 25},
		{Src: 0, Dst: 1, MB: 75},
	})
	if math.Abs(res.Flows[0].Finish-5) > 1e-6 {
		t.Fatalf("small flow finish = %v, want 5", res.Flows[0].Finish)
	}
	if math.Abs(res.Flows[1].Finish-10) > 1e-6 {
		t.Fatalf("big flow finish = %v, want 10", res.Flows[1].Finish)
	}
}

func TestSimulateDownlinkBottleneck(t *testing.T) {
	top, err := NewTopology([]string{"a", "b", "c"},
		[]float64{100, 100, 100}, []float64{100, 100, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Two fast sources converge on c's 5 MBps downlink: 2.5 MBps each.
	res := top.Simulate([]Transfer{
		{Src: 0, Dst: 2, MB: 25},
		{Src: 1, Dst: 2, MB: 25},
	})
	if math.Abs(res.Makespan-10) > 1e-6 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestSimulateNeverBeatsEstimate(t *testing.T) {
	top := EC2TenRegions(20)
	rng := stats.NewRand(11)
	for trial := 0; trial < 25; trial++ {
		var trs []Transfer
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			trs = append(trs, Transfer{
				Src: SiteID(rng.Intn(10)),
				Dst: SiteID(rng.Intn(10)),
				MB:  rng.Float64() * 500,
			})
		}
		est := top.Estimate(trs)
		sim := top.Simulate(trs).Makespan
		if sim < est-1e-6 {
			t.Fatalf("trial %d: simulate %v beat the per-link bound %v", trial, sim, est)
		}
	}
}

func TestSimulateEmptyAndLocal(t *testing.T) {
	top := twoSites(t)
	res := top.Simulate(nil)
	if res.Makespan != 0 {
		t.Fatalf("empty makespan = %v", res.Makespan)
	}
	res = top.Simulate([]Transfer{{Src: 1, Dst: 1, MB: 99}})
	if res.Makespan != 0 || res.Flows[0].Finish != 0 {
		t.Fatalf("local flow should complete instantly: %+v", res)
	}
}

// Property: the fluid makespan conserves work — total bytes delivered over
// the makespan can't exceed aggregate uplink capacity, so makespan ≥
// totalBytes / sum(uplinks).
func TestSimulateWorkConservationProperty(t *testing.T) {
	top := EC2TenRegions(10)
	totalUp := stats.Sum(top.Uplinks())
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw%20) + 1
		var trs []Transfer
		var total float64
		for i := 0; i < n; i++ {
			src := SiteID(rng.Intn(10))
			dst := SiteID(rng.Intn(10))
			mb := 1 + rng.Float64()*200
			if src != dst {
				total += mb
			}
			trs = append(trs, Transfer{Src: src, Dst: dst, MB: mb})
		}
		mk := top.Simulate(trs).Makespan
		return mk >= total/totalUp-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthEstimatorValidation(t *testing.T) {
	if _, err := NewBandwidthEstimator(0, 0.5); err == nil {
		t.Fatal("zero sites should error")
	}
	if _, err := NewBandwidthEstimator(2, 0); err == nil {
		t.Fatal("alpha=0 should error")
	}
	if _, err := NewBandwidthEstimator(2, 1.5); err == nil {
		t.Fatal("alpha>1 should error")
	}
	e, err := NewBandwidthEstimator(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(5, 1, 1); err == nil {
		t.Fatal("out-of-range site should error")
	}
	if err := e.Observe(0, 0, 1); err == nil {
		t.Fatal("non-positive sample should error")
	}
}

func TestBandwidthEstimatorEWMA(t *testing.T) {
	e, _ := NewBandwidthEstimator(1, 0.5)
	if _, _, ok := e.Estimate(0); ok {
		t.Fatal("unobserved site should report !ok")
	}
	_ = e.Observe(0, 10, 20)
	up, down, ok := e.Estimate(0)
	if !ok || up != 10 || down != 20 {
		t.Fatalf("first sample should seed estimate: %v %v %v", up, down, ok)
	}
	_ = e.Observe(0, 20, 40)
	up, down, _ = e.Estimate(0)
	if up != 15 || down != 30 {
		t.Fatalf("EWMA(0.5) = %v/%v, want 15/30", up, down)
	}
}

func TestBandwidthEstimatorSnapshotFallsBack(t *testing.T) {
	truth := twoSites(t)
	e, _ := NewBandwidthEstimator(2, 1)
	_ = e.Observe(0, 99, 98)
	snap := e.Snapshot(truth)
	if snap.Sites[0].UpMBps != 99 || snap.Sites[0].DownMBps != 98 {
		t.Fatalf("observed site should use estimate: %+v", snap.Sites[0])
	}
	if snap.Sites[1].UpMBps != 20 {
		t.Fatalf("unobserved site should fall back to truth: %+v", snap.Sites[1])
	}
}

func TestNoisyProbeConverges(t *testing.T) {
	truth := EC2TenRegions(20)
	e, _ := NewBandwidthEstimator(truth.N(), 0.3)
	rng := stats.NewRand(5)
	for i := 0; i < 200; i++ {
		e.NoisyProbe(truth, 0.1, rng)
	}
	for _, s := range truth.Sites {
		up, _, ok := e.Estimate(s.ID)
		if !ok {
			t.Fatalf("site %s never observed", s.Name)
		}
		if math.Abs(up-s.UpMBps)/s.UpMBps > 0.1 {
			t.Fatalf("site %s estimate %v too far from truth %v", s.Name, up, s.UpMBps)
		}
	}
}

func BenchmarkSimulateShuffle100Flows(b *testing.B) {
	top := EC2TenRegions(20)
	rng := stats.NewRand(1)
	var trs []Transfer
	for i := 0; i < 100; i++ {
		trs = append(trs, Transfer{
			Src: SiteID(rng.Intn(10)), Dst: SiteID(rng.Intn(10)), MB: 1 + rng.Float64()*100,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top.Simulate(trs)
	}
}
