package workload

import (
	"fmt"
	"math/rand"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/stats"
)

// tuplePool is a set of complete coordinate tuples rows draw from. Keys
// drawn from the shared pool exist at many sites (cross-site similarity);
// keys from a site pool are mostly local (self-similarity through
// duplication).
type tuplePool struct {
	tuples [][]string
	zipf   *rand.Zipf
}

func newTuplePool(rng *rand.Rand, tuples [][]string, skew float64) *tuplePool {
	if skew <= 1 {
		skew = 1.0001
	}
	return &tuplePool{
		tuples: tuples,
		zipf:   rand.NewZipf(rng, skew, 1, uint64(len(tuples)-1)),
	}
}

func (p *tuplePool) draw() []string { return p.tuples[p.zipf.Uint64()] }

// rowSource generates rows for one dataset: a global pool, optional
// per-affinity-group pools, and one pool per site.
type rowSource struct {
	rng    *rand.Rand
	cfg    Config
	shared *tuplePool
	groups []*tuplePool
	local  []*tuplePool
}

// newRowSource builds pools using mk to synthesize tuple t of pool p.
// Pool ids: -1 is the global pool, -(2+g) is affinity group g, and a
// non-negative id is the site-local pool.
func newRowSource(rng *rand.Rand, cfg Config, mk func(pool, t int) []string) *rowSource {
	mkPool := func(pool int) *tuplePool {
		tuples := make([][]string, cfg.KeysPerPool)
		for t := range tuples {
			tuples[t] = mk(pool, t)
		}
		return newTuplePool(rng, tuples, cfg.KeySkew)
	}
	src := &rowSource{rng: rng, cfg: cfg, shared: mkPool(-1)}
	for g := 0; g < cfg.AffinityGroups; g++ {
		src.groups = append(src.groups, mkPool(-(2 + g)))
	}
	for i := 0; i < cfg.Sites; i++ {
		src.local = append(src.local, mkPool(i))
	}
	return src
}

// groupOf returns the affinity group of a site (-1 without grouping).
func (s *rowSource) groupOf(site int) int {
	if len(s.groups) == 0 {
		return -1
	}
	return site % len(s.groups)
}

// generateRows fills per-site row slices: each site "produces"
// RowsPerSite rows; locality-aware placement stores them where produced,
// random placement scatters them uniformly. The Overlap fraction of rows
// carries cross-site similarity, split between the global pool (similar
// everywhere) and the site's affinity-group pool (similar within the
// group only) when grouping is on.
func (s *rowSource) generateRows(measure func() float64) [][]olap.Row {
	rows := make([][]olap.Row, s.cfg.Sites)
	for site := 0; site < s.cfg.Sites; site++ {
		g := s.groupOf(site)
		for r := 0; r < s.cfg.RowsPerSite; r++ {
			var coords []string
			if s.rng.Float64() < s.cfg.Overlap {
				if g >= 0 && s.rng.Float64() < 0.5 {
					coords = s.groups[g].draw()
				} else {
					coords = s.shared.draw()
				}
			} else {
				coords = s.local[site].draw()
			}
			target := site
			if !s.cfg.LocalityAware {
				target = s.rng.Intn(s.cfg.Sites)
			}
			rows[target] = append(rows[target], olap.Row{Coords: coords, Measure: measure()})
		}
	}
	return rows
}

// queryCounts splits a dataset's total recurring query count (uniform in
// [QueriesMin, QueriesMax]) across its query types, giving the dominant
// type the biggest share.
func queryCounts(rng *rand.Rand, cfg Config, types int) []int {
	total := cfg.QueriesMin
	if cfg.QueriesMax > cfg.QueriesMin {
		total += rng.Intn(cfg.QueriesMax - cfg.QueriesMin + 1)
	}
	counts := make([]int, types)
	// Every type gets ≥1 query when the budget allows; the remainder goes
	// to the first (dominant) type.
	for i := range counts {
		if total > 0 {
			counts[i] = 1
			total--
		}
	}
	counts[0] += total
	return counts
}

// projectedQuery builds an engine query that first projects the stored
// full-coordinate key down to the query's dimension set and then combines.
func projectedQuery(name, dataset string, schema *olap.Schema, dims []string, op engine.CombineOp, mapCost, reduceCost float64) (engine.Query, error) {
	proj, err := Projector(schema, dims)
	if err != nil {
		return engine.Query{}, err
	}
	return engine.Query{
		Name:      name,
		Dataset:   dataset,
		QueryType: string(olap.QueryTypeFor(dims)),
		Map: func(r engine.KV) []engine.KV {
			return []engine.KV{{Key: proj(r.Key), Val: r.Val}}
		},
		Combine: op,
		MapCost: mapCost, ReduceCost: reduceCost,
	}, nil
}

// udfQuery builds the AMPLab UDF: projection to the page URL followed by a
// simplified PageRank scatter, iterated.
func udfQuery(name, dataset string, schema *olap.Schema, dims []string, iterations int) (engine.Query, error) {
	proj, err := Projector(schema, dims)
	if err != nil {
		return engine.Query{}, err
	}
	return engine.Query{
		Name:      name,
		Dataset:   dataset,
		QueryType: string(olap.QueryTypeFor(dims)),
		Map: func(r engine.KV) []engine.KV {
			k := proj(r.Key)
			return []engine.KV{
				{Key: k, Val: 0.15 + 0.85*r.Val*0.5},
				{Key: linkTarget(k), Val: 0.85 * r.Val * 0.5},
			}
		},
		Combine:    engine.OpSum,
		Iterations: iterations,
		MapCost:    engine.DefaultMapCost * 1.2,
		ReduceCost: engine.DefaultReduceCost * 1.5,
	}, nil
}

// poolScope names a pool for key synthesis: the global pool, an affinity
// group, or a site-local pool.
func poolScope(pool int) string {
	switch {
	case pool == -1:
		return "shared"
	case pool < -1:
		return fmt.Sprintf("group%d", -(pool + 2))
	default:
		return fmt.Sprintf("site%d", pool)
	}
}

// linkTarget deterministically maps a page to a page it links to, within a
// closed ring so PageRank rounds stay well-defined and identical pages at
// different sites scatter to identical targets.
func linkTarget(key string) string {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("link-%d", h%4096)
}

// generateAMPLab builds one AMPLab big-data-benchmark dataset: the
// rankings/uservisits schema reduced to (url, country, hour) with a page
// score measure. The workload kind decides the dominant query type.
func generateAMPLab(kind Kind, cfg Config, idx int, seed int64) (*Dataset, error) {
	rng := stats.NewRand(seed)
	schema := olap.MustSchema("url", "country", "hour")
	name := fmt.Sprintf("amplab-%03d", idx)
	countries := []string{"US", "JP", "DE", "BR", "IN", "AU", "GB", "KR", "SG", "IE"}

	mk := func(pool, t int) []string {
		scope := poolScope(pool)
		return []string{
			fmt.Sprintf("%s.u%04d.example.com/page%d", scope, t, t%97),
			countries[t%len(countries)],
			fmt.Sprintf("%02d", t%24),
		}
	}
	src := newRowSource(rng, cfg, mk)
	rows := src.generateRows(func() float64 { return 1 + rng.Float64()*9 })

	scan, err := projectedQuery(name+"/scan", name, schema, []string{"url"},
		engine.OpSum, engine.DefaultMapCost, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	udf, err := udfQuery(name+"/udf", name, schema, []string{"url"}, 2)
	if err != nil {
		return nil, err
	}
	aggr, err := projectedQuery(name+"/aggr", name, schema, []string{"country", "hour"},
		engine.OpSum, engine.DefaultMapCost*1.5, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}

	var specs []QuerySpec
	switch kind {
	case BigDataScan:
		specs = []QuerySpec{
			{Query: scan, Dims: []string{"url"}},
			{Query: aggr, Dims: []string{"country", "hour"}},
		}
	case BigDataUDF:
		specs = []QuerySpec{
			{Query: udf, Dims: []string{"url"}},
			{Query: aggr, Dims: []string{"country", "hour"}},
		}
	case BigDataAggr:
		specs = []QuerySpec{
			{Query: aggr, Dims: []string{"country", "hour"}},
			{Query: scan, Dims: []string{"url"}},
		}
	default:
		return nil, fmt.Errorf("workload: %v is not an AMPLab kind", kind)
	}
	counts := queryCounts(rng, cfg, len(specs))
	for i := range specs {
		specs[i].Count = counts[i]
	}
	return &Dataset{Name: name, Schema: schema, Rows: rows, Queries: specs}, nil
}

// generateTPCDS builds one TPC-DS-flavoured dataset: a store_sales fact
// slice over (item, store, date, region) with a sales-amount measure, and
// the OLAP aggregation mix the benchmark's reporting queries perform.
func generateTPCDS(cfg Config, idx int, seed int64) (*Dataset, error) {
	rng := stats.NewRand(seed)
	schema := olap.MustSchema("item", "store", "date", "region")
	name := fmt.Sprintf("tpcds-%03d", idx)
	regions := []string{"AMER", "EMEA", "APAC", "LATAM"}

	mk := func(pool, t int) []string {
		scope := poolScope(pool)
		return []string{
			fmt.Sprintf("item-%s-%04d", scope, t),
			fmt.Sprintf("store-%03d", t%50),
			fmt.Sprintf("2018-%02d-%02d", t%12+1, t%28+1),
			regions[t%len(regions)],
		}
	}
	src := newRowSource(rng, cfg, mk)
	rows := src.generateRows(func() float64 { return 5 + rng.Float64()*195 })

	byItem, err := projectedQuery(name+"/sales-by-item", name, schema, []string{"item"},
		engine.OpSum, engine.DefaultMapCost*1.5, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	byStoreDate, err := projectedQuery(name+"/sales-by-store-date", name, schema, []string{"store", "date"},
		engine.OpSum, engine.DefaultMapCost*1.5, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	byRegion, err := projectedQuery(name+"/sales-by-region", name, schema, []string{"region"},
		engine.OpSum, engine.DefaultMapCost, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	specs := []QuerySpec{
		{Query: byItem, Dims: []string{"item"}},
		{Query: byStoreDate, Dims: []string{"store", "date"}},
		{Query: byRegion, Dims: []string{"region"}},
	}
	counts := queryCounts(rng, cfg, len(specs))
	for i := range specs {
		specs[i].Count = counts[i]
	}
	return &Dataset{Name: name, Schema: schema, Rows: rows, Queries: specs}, nil
}

// generateFacebook builds one Facebook-trace-flavoured dataset: job log
// records over (jobclass, user, hour) with run-duration measures and the
// heavy-tailed job mix of the 2010 Hadoop trace (most jobs tiny, a long
// tail of large ones).
func generateFacebook(cfg Config, idx int, seed int64) (*Dataset, error) {
	rng := stats.NewRand(seed)
	schema := olap.MustSchema("jobclass", "user", "hour")
	name := fmt.Sprintf("facebook-%03d", idx)

	mk := func(pool, t int) []string {
		scope := poolScope(pool)
		return []string{
			fmt.Sprintf("class-%s-%03d", scope, t%120),
			fmt.Sprintf("user-%s-%04d", scope, t),
			fmt.Sprintf("%02d", t%24),
		}
	}
	src := newRowSource(rng, cfg, mk)
	// Heavy-tailed durations: mostly seconds, occasionally hours.
	rows := src.generateRows(func() float64 {
		d := rng.ExpFloat64() * 30
		if rng.Float64() < 0.05 {
			d *= 50
		}
		return d
	})

	jobsByClass, err := projectedQuery(name+"/jobs-by-class", name, schema, []string{"jobclass"},
		engine.OpCount, engine.DefaultMapCost, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	timeByUser, err := projectedQuery(name+"/time-by-user", name, schema, []string{"user"},
		engine.OpSum, engine.DefaultMapCost, engine.DefaultReduceCost)
	if err != nil {
		return nil, err
	}
	specs := []QuerySpec{
		{Query: jobsByClass, Dims: []string{"jobclass"}},
		{Query: timeByUser, Dims: []string{"user"}},
	}
	counts := queryCounts(rng, cfg, len(specs))
	for i := range specs {
		specs[i].Count = counts[i]
	}
	return &Dataset{Name: name, Schema: schema, Rows: rows, Queries: specs}, nil
}
