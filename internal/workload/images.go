package workload

import (
	"fmt"

	"bohr/internal/olap"
	"bohr/internal/similarity"
	"bohr/internal/stats"
)

// ImageDataset models the paper's second data type (§4.1): image-like
// records that cannot be aggregated directly and are first turned into
// feature vectors with a vector space model, then hashed with LSH so
// similarity checking stays cheap. The reproduction synthesizes feature
// vectors directly (there is no real image corpus offline); each "image"
// belongs to a latent class, and images of a class share a class centroid
// plus noise — the structure VSM extraction produces on real photos.
type ImageDataset struct {
	Name string
	// Vectors[i] holds the feature vectors stored at site i.
	Vectors [][][]float64
	// Classes[i][v] is the latent class of Vectors[i][v].
	Classes [][]int
	Dim     int
}

// ImageConfig parameterizes image synthesis.
type ImageConfig struct {
	Sites         int
	VectorsPerSit int
	Dim           int
	Classes       int
	// Overlap is the fraction of vectors drawn from globally shared
	// classes rather than site-local ones.
	Overlap float64
	Noise   float64
	Seed    int64
}

// DefaultImageConfig mirrors the scale of the log workloads.
func DefaultImageConfig() ImageConfig {
	return ImageConfig{Sites: 10, VectorsPerSit: 500, Dim: 64, Classes: 40, Overlap: 0.5, Noise: 0.3, Seed: 7}
}

// GenerateImages synthesizes one image dataset.
func GenerateImages(name string, cfg ImageConfig) (*ImageDataset, error) {
	if cfg.Sites <= 0 || cfg.VectorsPerSit <= 0 || cfg.Dim <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("workload: image config needs positive sizes: %+v", cfg)
	}
	if cfg.Overlap < 0 || cfg.Overlap > 1 {
		return nil, fmt.Errorf("workload: image overlap %v out of [0,1]", cfg.Overlap)
	}
	rng := stats.NewRand(cfg.Seed)
	// Class centroids: shared classes then per-site classes.
	nCentroids := cfg.Classes * (1 + cfg.Sites)
	centroids := make([][]float64, nCentroids)
	for c := range centroids {
		v := make([]float64, cfg.Dim)
		for d := range v {
			v[d] = rng.NormFloat64() * 2
		}
		centroids[c] = v
	}
	ds := &ImageDataset{Name: name, Dim: cfg.Dim}
	for site := 0; site < cfg.Sites; site++ {
		var vecs [][]float64
		var classes []int
		for i := 0; i < cfg.VectorsPerSit; i++ {
			var class int
			if rng.Float64() < cfg.Overlap {
				class = rng.Intn(cfg.Classes) // shared class block
			} else {
				class = cfg.Classes*(1+site) + rng.Intn(cfg.Classes)
			}
			v := make([]float64, cfg.Dim)
			for d := range v {
				v[d] = centroids[class][d] + rng.NormFloat64()*cfg.Noise
			}
			vecs = append(vecs, v)
			classes = append(classes, class)
		}
		ds.Vectors = append(ds.Vectors, vecs)
		ds.Classes = append(ds.Classes, classes)
	}
	return ds, nil
}

// FeatureCube formats one site's image vectors into an OLAP cube via LSH
// (§4.2: locality-sensitive hashing reduces the dimensionality so the
// high-dimensional feature vectors can be probed efficiently): the cube's
// single dimension is the LSH bucket of each vector, so images hashing to
// the same bucket cluster in the same cell.
func (d *ImageDataset) FeatureCube(site int, lsh *similarity.LSH) (*olap.Cube, error) {
	if site < 0 || site >= len(d.Vectors) {
		return nil, fmt.Errorf("workload: site %d out of range", site)
	}
	cube := olap.NewCube(olap.MustSchema("lshBucket"))
	for _, v := range d.Vectors[site] {
		sig, err := lsh.Sign(v)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%x", sig)
		if err := cube.Insert(olap.Row{Coords: []string{key}, Measure: 1}); err != nil {
			return nil, err
		}
	}
	return cube, nil
}
