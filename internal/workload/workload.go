// Package workload generates the three evaluation workloads of the paper
// (§8.1): the AMPLab big data benchmark (scan / UDF / aggregation over a
// rankings-style schema), a TPC-DS-flavoured retail star schema, and a
// Facebook-trace-flavoured job log with a heavy-tailed job mix. The
// generators synthesize geo-distributed datasets with controllable
// cross-site key overlap, so the similarity structure Bohr exploits is a
// tunable input rather than an accident of the generator.
package workload

import (
	"fmt"
	"strings"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/stats"
)

// Kind selects one of the paper's workloads.
type Kind int

// The five workload columns of Figures 6, 7 and 10.
const (
	BigDataScan Kind = iota
	BigDataUDF
	BigDataAggr
	TPCDS
	Facebook
)

func (k Kind) String() string {
	switch k {
	case BigDataScan:
		return "Big data (scan)"
	case BigDataUDF:
		return "Big data (UDF)"
	case BigDataAggr:
		return "Big data (aggr)"
	case TPCDS:
		return "TPC-DS"
	case Facebook:
		return "Facebook"
	}
	return "unknown"
}

// Kinds lists all workloads in the paper's figure order.
func Kinds() []Kind {
	return []Kind{BigDataScan, BigDataUDF, BigDataAggr, TPCDS, Facebook}
}

// Config parameterizes generation. The paper uses 400 GB per workload
// split 40 GB per site over ten sites and 300 datasets; the reproduction
// scales record counts down while keeping every ratio (per-site split,
// query-per-dataset distribution, overlap structure).
type Config struct {
	// Sites is the number of DCs.
	Sites int
	// Datasets is the number of distinct datasets (paper: 300).
	Datasets int
	// RowsPerSite is the number of raw rows initially placed at each site
	// per dataset.
	RowsPerSite int
	// Overlap in [0,1] is the fraction of rows drawn from the globally
	// shared key pool (cross-site similarity); the rest come from
	// site-local pools.
	Overlap float64
	// KeySkew is the Zipf exponent of key popularity (>1).
	KeySkew float64
	// KeysPerPool is the number of distinct keys in each pool.
	KeysPerPool int
	// LocalityAware places rows at their keys' home sites (the paper's
	// "locality aware" initial placement); false scatters uniformly.
	LocalityAware bool
	// AffinityGroups partitions sites into this many groups that share a
	// group key pool in addition to the global one: sites in the same
	// group hold mutually similar data, so picking the RIGHT receiver
	// requires accurate similarity information — the discrimination
	// problem probes solve (§4.2). 0 disables grouping.
	AffinityGroups int
	// QueriesMin/QueriesMax bound the per-dataset query count, drawn
	// uniformly (paper: 2–10).
	QueriesMin, QueriesMax int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration preserving the
// paper's ratios.
func DefaultConfig(kind Kind) Config {
	return Config{
		Sites:          10,
		Datasets:       20,
		RowsPerSite:    2000,
		Overlap:        0.5,
		KeySkew:        1.3,
		KeysPerPool:    400,
		QueriesMin:     2,
		QueriesMax:     10,
		AffinityGroups: 3,
		Seed:           int64(kind)*1000 + 1,
	}
}

func (c Config) validate() error {
	if c.Sites <= 0 || c.Datasets <= 0 || c.RowsPerSite <= 0 {
		return fmt.Errorf("workload: sites/datasets/rows must be positive, got %d/%d/%d",
			c.Sites, c.Datasets, c.RowsPerSite)
	}
	if c.Overlap < 0 || c.Overlap > 1 {
		return fmt.Errorf("workload: overlap %v out of [0,1]", c.Overlap)
	}
	if c.KeysPerPool <= 0 {
		return fmt.Errorf("workload: keys per pool must be positive, got %d", c.KeysPerPool)
	}
	if c.QueriesMin <= 0 || c.QueriesMax < c.QueriesMin {
		return fmt.Errorf("workload: bad query count range [%d,%d]", c.QueriesMin, c.QueriesMax)
	}
	if c.AffinityGroups < 0 {
		return fmt.Errorf("workload: negative affinity groups %d", c.AffinityGroups)
	}
	return nil
}

// QuerySpec is one recurring query of a dataset, carrying both the engine
// query and the attribute set (query type) it accesses.
type QuerySpec struct {
	Query engine.Query
	// Dims are the schema attributes the query combines on.
	Dims []string
	// Count is how many recurring queries of this type the dataset sees;
	// probe budget weights derive from it (§4.2).
	Count int
}

// Dataset is one generated geo-distributed dataset: per-site raw rows over
// a schema, plus its recurring queries.
type Dataset struct {
	Name   string
	Schema *olap.Schema
	// Rows[i] holds the raw rows initially placed at site i.
	Rows [][]olap.Row
	// Queries are the recurring query types over this dataset.
	Queries []QuerySpec
}

// TotalQueries sums query counts across types.
func (d *Dataset) TotalQueries() int {
	n := 0
	for _, q := range d.Queries {
		n += q.Count
	}
	return n
}

// Weights returns per-query-type probe weights: the fraction of the
// dataset's queries belonging to each type (§4.2).
func (d *Dataset) Weights() []float64 {
	total := d.TotalQueries()
	out := make([]float64, len(d.Queries))
	if total == 0 {
		return out
	}
	for i, q := range d.Queries {
		out[i] = float64(q.Count) / float64(total)
	}
	return out
}

// Workload is a full generated workload: many datasets plus the kind that
// produced it.
type Workload struct {
	Kind     Kind
	Config   Config
	Datasets []*Dataset
}

// keySep joins coordinates into engine keys; olap.Row coordinates never
// contain it.
const keySep = "\x1f"

// JoinKey builds the engine record key from row coordinates.
func JoinKey(coords []string) string { return strings.Join(coords, keySep) }

// SplitKey recovers coordinates from an engine key.
func SplitKey(key string) []string { return strings.Split(key, keySep) }

// Projector returns a function projecting a full engine key down to the
// given attribute subset of the schema — the dimension-cube view queries
// combine on.
func Projector(schema *olap.Schema, dims []string) (func(string) string, error) {
	idx := make([]int, len(dims))
	for i, d := range dims {
		j := schema.Index(d)
		if j < 0 {
			return nil, fmt.Errorf("workload: projector: unknown dimension %q", d)
		}
		idx[i] = j
	}
	nd := schema.NumDims()
	return func(key string) string {
		coords := SplitKey(key)
		if len(coords) != nd {
			return key // foreign key shape; leave untouched
		}
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = coords[j]
		}
		return strings.Join(parts, keySep)
	}, nil
}

// Generate builds a workload of the given kind.
func Generate(kind Kind, cfg Config) (*Workload, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &Workload{Kind: kind, Config: cfg}
	for a := 0; a < cfg.Datasets; a++ {
		seed := stats.Split(cfg.Seed, int64(a))
		var (
			ds  *Dataset
			err error
		)
		switch kind {
		case BigDataScan, BigDataUDF, BigDataAggr:
			ds, err = generateAMPLab(kind, cfg, a, seed)
		case TPCDS:
			ds, err = generateTPCDS(cfg, a, seed)
		case Facebook:
			ds, err = generateFacebook(cfg, a, seed)
		default:
			err = fmt.Errorf("workload: unknown kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
		w.Datasets = append(w.Datasets, ds)
	}
	return w, nil
}

// Populate loads every dataset's rows into the cluster as engine records
// (full-coordinate keys, measure as value). The cluster must have at least
// cfg.Sites sites.
func (w *Workload) Populate(c *engine.Cluster) error {
	if c.N() < w.Config.Sites {
		return fmt.Errorf("workload: cluster has %d sites, workload needs %d", c.N(), w.Config.Sites)
	}
	for _, ds := range w.Datasets {
		for i, rows := range ds.Rows {
			recs := make([]engine.KV, len(rows))
			for r, row := range rows {
				recs[r] = engine.KV{Key: JoinKey(row.Coords), Val: row.Measure}
			}
			c.Data[i].Add(ds.Name, recs...)
		}
	}
	return nil
}

// CubeSets builds one olap.CubeSet per site for a dataset, with every
// query type registered — the pre-processing step of §4.1.
func (d *Dataset) CubeSets() ([]*olap.CubeSet, error) {
	out := make([]*olap.CubeSet, len(d.Rows))
	for i, rows := range d.Rows {
		cs := olap.NewCubeSet(d.Schema)
		if err := cs.Insert(rows...); err != nil {
			return nil, fmt.Errorf("workload: dataset %q site %d: %w", d.Name, i, err)
		}
		for _, q := range d.Queries {
			if _, err := cs.RegisterQueryType(q.Dims); err != nil {
				return nil, fmt.Errorf("workload: dataset %q site %d: %w", d.Name, i, err)
			}
		}
		out[i] = cs
	}
	return out, nil
}

// DominantQuery returns the query type with the largest Count — the view
// data movement optimizes for when a single projection must be chosen.
func (d *Dataset) DominantQuery() QuerySpec {
	best := d.Queries[0]
	for _, q := range d.Queries[1:] {
		if q.Count > best.Count {
			best = q
		}
	}
	return best
}
