package workload

import (
	"context"
	"strings"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/similarity"
	"bohr/internal/wan"
)

func smallConfig() Config {
	cfg := DefaultConfig(BigDataScan)
	cfg.Sites = 3
	cfg.Datasets = 2
	cfg.RowsPerSite = 300
	cfg.KeysPerPool = 50
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Sites: 3, Datasets: 1, RowsPerSite: 10, Overlap: 2, KeysPerPool: 5, QueriesMin: 1, QueriesMax: 2},
		{Sites: 3, Datasets: 1, RowsPerSite: 10, KeysPerPool: 0, QueriesMin: 1, QueriesMax: 2},
		{Sites: 3, Datasets: 1, RowsPerSite: 10, KeysPerPool: 5, QueriesMin: 5, QueriesMax: 2},
		{Sites: 3, Datasets: 1, RowsPerSite: 10, KeysPerPool: 5, QueriesMin: 0, QueriesMax: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(BigDataScan, cfg); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if len(Kinds()) != 5 {
		t.Fatal("five workload kinds expected")
	}
	for _, k := range Kinds() {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("bad kind should be unknown")
	}
}

func TestGenerateShape(t *testing.T) {
	for _, kind := range Kinds() {
		cfg := smallConfig()
		w, err := Generate(kind, cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(w.Datasets) != cfg.Datasets {
			t.Fatalf("%v: datasets = %d", kind, len(w.Datasets))
		}
		for _, ds := range w.Datasets {
			if len(ds.Rows) != cfg.Sites {
				t.Fatalf("%v/%s: row sites = %d", kind, ds.Name, len(ds.Rows))
			}
			total := 0
			for _, rows := range ds.Rows {
				total += len(rows)
			}
			if total != cfg.Sites*cfg.RowsPerSite {
				t.Fatalf("%v/%s: total rows = %d, want %d", kind, ds.Name, total, cfg.Sites*cfg.RowsPerSite)
			}
			if len(ds.Queries) < 2 {
				t.Fatalf("%v/%s: only %d query types", kind, ds.Name, len(ds.Queries))
			}
			tq := ds.TotalQueries()
			if tq < cfg.QueriesMin || tq > cfg.QueriesMax {
				t.Fatalf("%v/%s: %d queries outside [%d,%d]", kind, ds.Name, tq, cfg.QueriesMin, cfg.QueriesMax)
			}
			for _, q := range ds.Queries {
				if err := q.Query.Validate(); err != nil {
					t.Fatalf("%v/%s: invalid query: %v", kind, ds.Name, err)
				}
				for _, d := range q.Dims {
					if !ds.Schema.Has(d) {
						t.Fatalf("%v/%s: query dim %q not in schema", kind, ds.Name, d)
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	w1, err := Generate(TPCDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(TPCDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range w1.Datasets {
		for s := range w1.Datasets[d].Rows {
			r1, r2 := w1.Datasets[d].Rows[s], w2.Datasets[d].Rows[s]
			if len(r1) != len(r2) {
				t.Fatal("row counts differ between identical generations")
			}
			for i := range r1 {
				if JoinKey(r1[i].Coords) != JoinKey(r2[i].Coords) || r1[i].Measure != r2[i].Measure {
					t.Fatal("rows differ between identical generations")
				}
			}
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	w, err := Generate(Facebook, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range w.Datasets {
		var sum float64
		for _, wt := range ds.Weights() {
			sum += wt
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}

func TestDominantQuery(t *testing.T) {
	ds := &Dataset{Queries: []QuerySpec{
		{Count: 2, Dims: []string{"a"}},
		{Count: 7, Dims: []string{"b"}},
	}}
	if got := ds.DominantQuery(); got.Count != 7 {
		t.Fatalf("dominant = %+v", got)
	}
}

func TestLocalityIncreasesSelfSimilarity(t *testing.T) {
	cfg := smallConfig()
	cfg.RowsPerSite = 1000

	measure := func(locality bool) float64 {
		c := cfg
		c.LocalityAware = locality
		w, err := Generate(BigDataScan, c)
		if err != nil {
			t.Fatal(err)
		}
		// Mean per-site self-similarity on full keys.
		var total float64
		var n int
		for _, ds := range w.Datasets {
			for _, rows := range ds.Rows {
				recs := make([]engine.KV, len(rows))
				for i, r := range rows {
					recs[i] = engine.KV{Key: JoinKey(r.Coords), Val: r.Measure}
				}
				total += engine.SelfSimilarity(recs)
				n++
			}
		}
		return total / float64(n)
	}
	local := measure(true)
	random := measure(false)
	if local <= random {
		t.Fatalf("locality-aware placement should raise self-similarity: local=%v random=%v", local, random)
	}
}

func TestOverlapIncreasesCrossSiteSimilarity(t *testing.T) {
	crossSim := func(overlap float64) float64 {
		cfg := smallConfig()
		cfg.Overlap = overlap
		// Locality-aware placement keeps each site's rows where they were
		// produced, so the shared-pool fraction is what the two sites have
		// in common. (Under random scatter every site sees the same
		// mixture and overlap barely matters.)
		cfg.LocalityAware = true
		cfg.RowsPerSite = 1000
		w, err := Generate(BigDataScan, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds := w.Datasets[0]
		keys := func(site int) []string {
			var out []string
			for _, r := range ds.Rows[site] {
				out = append(out, JoinKey(r.Coords))
			}
			return out
		}
		return similarity.ExactJaccard(keys(0), keys(1))
	}
	high := crossSim(0.9)
	low := crossSim(0.1)
	if high <= low {
		t.Fatalf("overlap should raise cross-site similarity: high=%v low=%v", high, low)
	}
}

func TestPopulate(t *testing.T) {
	cfg := smallConfig()
	w, err := Generate(TPCDS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := wan.NewTopology([]string{"a", "b", "c"}, []float64{1, 1, 1}, []float64{1, 1, 1})
	c, _ := engine.NewCluster(top, 1, 2, 100)
	if err := w.Populate(c); err != nil {
		t.Fatal(err)
	}
	names := c.DatasetNames()
	if len(names) != cfg.Datasets {
		t.Fatalf("cluster datasets = %v", names)
	}
	total := 0
	for i := 0; i < c.N(); i++ {
		total += len(c.Data[i].Records(names[0]))
	}
	if total != cfg.Sites*cfg.RowsPerSite {
		t.Fatalf("populated rows = %d", total)
	}
	// A too-small cluster errors.
	top2, _ := wan.NewTopology([]string{"x"}, []float64{1}, []float64{1})
	c2, _ := engine.NewCluster(top2, 1, 1, 100)
	if err := w.Populate(c2); err == nil {
		t.Fatal("small cluster should error")
	}
}

func TestPopulatedQueriesRun(t *testing.T) {
	for _, kind := range Kinds() {
		cfg := smallConfig()
		cfg.Datasets = 1
		w, err := Generate(kind, cfg)
		if err != nil {
			t.Fatal(err)
		}
		top, _ := wan.NewTopology([]string{"a", "b", "c"}, []float64{5, 20, 40}, []float64{5, 20, 40})
		c, _ := engine.NewCluster(top, 1, 2, 100)
		if err := w.Populate(c); err != nil {
			t.Fatal(err)
		}
		for _, q := range w.Datasets[0].Queries {
			res, err := c.Run(context.Background(), engine.JobConfig{Query: q.Query})
			if err != nil {
				t.Fatalf("%v/%s: %v", kind, q.Query.Name, err)
			}
			if len(res.Output) == 0 {
				t.Fatalf("%v/%s produced no output", kind, q.Query.Name)
			}
			if res.QCT <= 0 {
				t.Fatalf("%v/%s QCT = %v", kind, q.Query.Name, res.QCT)
			}
		}
	}
}

func TestProjector(t *testing.T) {
	schema := olap.MustSchema("a", "b", "c")
	proj, err := Projector(schema, []string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	key := JoinKey([]string{"x", "y", "z"})
	if got := proj(key); got != JoinKey([]string{"z", "x"}) {
		t.Fatalf("projected = %q", got)
	}
	// Foreign-shaped keys pass through.
	if got := proj("just-one-part"); got != "just-one-part" {
		t.Fatalf("foreign key mangled: %q", got)
	}
	if _, err := Projector(schema, []string{"zzz"}); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestJoinSplitKeyRoundTrip(t *testing.T) {
	coords := []string{"a", "b:1", "c/2"}
	if got := SplitKey(JoinKey(coords)); strings.Join(got, "|") != "a|b:1|c/2" {
		t.Fatalf("round trip = %v", got)
	}
}

func TestCubeSets(t *testing.T) {
	cfg := smallConfig()
	cfg.Datasets = 1
	w, err := Generate(BigDataAggr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := w.Datasets[0]
	sets, err := ds.CubeSets()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != cfg.Sites {
		t.Fatalf("cube sets = %d", len(sets))
	}
	for i, cs := range sets {
		if cs.Base().NumRows() != len(ds.Rows[i]) {
			t.Fatalf("site %d cube rows = %d, want %d", i, cs.Base().NumRows(), len(ds.Rows[i]))
		}
		if got := len(cs.QueryTypes()); got != len(ds.Queries) {
			t.Fatalf("site %d registered types = %d, want %d", i, got, len(ds.Queries))
		}
	}
}

func TestGenerateImages(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Sites = 2
	cfg.VectorsPerSit = 50
	cfg.Dim = 16
	ds, err := GenerateImages("img", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vectors) != 2 || len(ds.Vectors[0]) != 50 || len(ds.Vectors[0][0]) != 16 {
		t.Fatalf("shape: %d sites, %d vecs, %d dim", len(ds.Vectors), len(ds.Vectors[0]), len(ds.Vectors[0][0]))
	}
	bad := cfg
	bad.Dim = 0
	if _, err := GenerateImages("img", bad); err == nil {
		t.Fatal("dim=0 should error")
	}
	bad = cfg
	bad.Overlap = -1
	if _, err := GenerateImages("img", bad); err == nil {
		t.Fatal("overlap<0 should error")
	}
}

func TestFeatureCubeClustersClasses(t *testing.T) {
	cfg := DefaultImageConfig()
	cfg.Sites = 1
	cfg.VectorsPerSit = 200
	cfg.Dim = 32
	cfg.Classes = 5
	cfg.Noise = 0.05
	ds, err := GenerateImages("img", cfg)
	if err != nil {
		t.Fatal(err)
	}
	lsh, err := similarity.NewLSH(32, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ds.FeatureCube(0, lsh)
	if err != nil {
		t.Fatal(err)
	}
	// 200 low-noise vectors from ≤10 populated classes must collapse into
	// far fewer LSH buckets than vectors.
	if cube.NumCells() >= 100 {
		t.Fatalf("LSH buckets = %d, expected strong clustering", cube.NumCells())
	}
	if cube.TotalCount() != 200 {
		t.Fatalf("cube rows = %d", cube.TotalCount())
	}
	if _, err := ds.FeatureCube(9, lsh); err == nil {
		t.Fatal("out-of-range site should error")
	}
}

func TestAffinityGroupsCreateAsymmetricSimilarity(t *testing.T) {
	cfg := smallConfig()
	cfg.Sites = 6
	cfg.AffinityGroups = 3 // groups: {0,3}, {1,4}, {2,5}
	cfg.RowsPerSite = 1200
	cfg.LocalityAware = true
	w, err := Generate(BigDataScan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := w.Datasets[0]
	keys := func(site int) []string {
		var out []string
		for _, r := range ds.Rows[site] {
			out = append(out, JoinKey(r.Coords))
		}
		return out
	}
	sameGroup := similarity.ExactJaccard(keys(0), keys(3))
	crossGroup := similarity.ExactJaccard(keys(0), keys(1))
	if sameGroup <= crossGroup {
		t.Fatalf("same-group similarity %v should exceed cross-group %v", sameGroup, crossGroup)
	}
}

func TestAffinityGroupsValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.AffinityGroups = -1
	if _, err := Generate(BigDataScan, cfg); err == nil {
		t.Fatal("negative affinity groups should error")
	}
	// Zero groups is the ungrouped generator.
	cfg.AffinityGroups = 0
	if _, err := Generate(BigDataScan, cfg); err != nil {
		t.Fatal(err)
	}
}
